//! Per-stage attribution over a parsed trace.
//!
//! Everything here is integer arithmetic over span fields, computed in
//! a fixed order, so the same trace always yields the same
//! [`Attribution`] — the invariant the byte-identical report rests on.

use crate::trace::{SpanRec, TraceFile};
use std::collections::BTreeMap;
use wga_core::obs::SpanName;

/// Pairless spans carry this pair id on the wire.
const NO_PAIR: u64 = u64::MAX;

/// Aggregate over every span of one stage (wire name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAgg {
    /// Wire name of the stage.
    pub stage: &'static str,
    /// Number of spans recorded.
    pub spans: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Sum of span `items`.
    pub items: u64,
    /// Sum of span `cells`.
    pub cells: u64,
}

/// Busy / queue-wait / idle split for one worker thread (schema-2
/// traces only; schema-1 traces have a single tid-0 worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerAgg {
    /// Thread id from the trace.
    pub tid: u64,
    /// Spans this worker recorded (all kinds).
    pub spans: u64,
    /// Microseconds inside top-level pipeline spans (excludes
    /// `queue.wait`, `hwsim.*` accounting spans, and nested spans —
    /// a nested `extend.tile` is already covered by its `extend` lane).
    pub busy_us: u64,
    /// Microseconds inside `queue.wait` spans.
    pub wait_us: u64,
    /// Lifetime minus busy minus wait, saturating at zero.
    pub idle_us: u64,
}

/// Critical-path estimate for one pair: serial seed time, the slowest
/// filter batch (batches run concurrently), and extension commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairPath {
    /// Pair id.
    pub pair: u64,
    /// Σ `seed` + `seed.table` durations for the pair.
    pub seed_us: u64,
    /// max `filter.batch` duration for the pair.
    pub filter_us: u64,
    /// Σ `extend` lane durations (falls back to Σ `extend.tile` when
    /// the trace predates lane spans).
    pub extend_us: u64,
    /// seed + filter + extend.
    pub total_us: u64,
}

/// One entry of a top-K slowest listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopSpan {
    /// Pair id (`u64::MAX` for pairless spans).
    pub pair: u64,
    /// Strand code.
    pub strand: u8,
    /// Sibling sequence number.
    pub seq: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Work items covered.
    pub items: u64,
    /// DP cells covered.
    pub cells: u64,
}

/// The full attribution derived from one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// One aggregate per known stage, in `SpanName::ALL` order
    /// (zero-span stages included, so the list shape is fixed).
    pub stages: Vec<StageAgg>,
    /// Seed share of seed+filter+extend stage time, centi-percent.
    pub seed_share_centi: u64,
    /// Filter share, centi-percent.
    pub filter_share_centi: u64,
    /// Extend share, centi-percent.
    pub extend_share_centi: u64,
    /// Per-worker busy/wait/idle, ascending tid.
    pub workers: Vec<WorkerAgg>,
    /// Distinct pairs seen in the trace.
    pub pairs: u64,
    /// The pair with the longest estimated critical path (ties break
    /// to the lowest pair id); `None` for a pairless trace.
    pub critical: Option<PairPath>,
    /// Trace wall clock: max end minus min start over non-`hwsim.*`
    /// spans (hwsim spans carry modeled cycles, not wall time).
    pub wall_us: u64,
    /// Slowest `filter.batch` spans, slowest first.
    pub top_filter_batches: Vec<TopSpan>,
    /// Slowest `extend.tile` spans, slowest first.
    pub top_extend_tiles: Vec<TopSpan>,
    /// `shard.spec_discard` counter value.
    pub spec_discard: u64,
    /// Number of `extend.tile` spans (committed extensions).
    pub extended_tiles: u64,
    /// Discarded speculative extensions as a share of all extension
    /// work, centi-percent: `discard * 10000 / (discard + committed)`.
    pub discard_centi: u64,
    /// Number of `fault` spans (injected-fault retries observed).
    pub fault_spans: u64,
}

fn share_centi(part: u64, whole: u64) -> u64 {
    part.saturating_mul(10_000).checked_div(whole).unwrap_or(0)
}

fn top_k(spans: &[&SpanRec], k: usize) -> Vec<TopSpan> {
    let mut ranked: Vec<&SpanRec> = spans.to_vec();
    ranked.sort_by_key(|s| (std::cmp::Reverse(s.dur_us), s.start_us, s.pair, s.seq, s.id));
    ranked
        .into_iter()
        .take(k)
        .map(|s| TopSpan {
            pair: s.pair,
            strand: s.strand,
            seq: s.seq,
            dur_us: s.dur_us,
            items: s.items,
            cells: s.cells,
        })
        .collect()
}

impl Attribution {
    /// Computes the attribution for `trace`, keeping the `k` slowest
    /// entries in the top listings.
    pub fn compute(trace: &TraceFile, k: usize) -> Attribution {
        let mut stages = Vec::with_capacity(SpanName::ALL.len());
        for name in SpanName::ALL {
            let wire = name.as_str();
            let mut agg = StageAgg {
                stage: wire,
                spans: 0,
                total_us: 0,
                items: 0,
                cells: 0,
            };
            for s in trace.spans_named(wire) {
                agg.spans += 1;
                agg.total_us = agg.total_us.saturating_add(s.dur_us);
                agg.items = agg.items.saturating_add(s.items);
                agg.cells = agg.cells.saturating_add(s.cells);
            }
            stages.push(agg);
        }
        let stage_total =
            |wire: &str| stages.iter().find(|a| a.stage == wire).map_or(0, |a| a.total_us);
        let lane_total = stage_total("extend");
        let seed_t = stage_total("seed").saturating_add(stage_total("seed.table"));
        let filter_t = stage_total("filter.batch");
        let extend_t = if lane_total > 0 {
            lane_total
        } else {
            stage_total("extend.tile")
        };
        let pipeline_t = seed_t.saturating_add(filter_t).saturating_add(extend_t);

        // Per-worker busy/wait/idle. Busy counts only top-level
        // pipeline spans: queue.wait is wait, hwsim spans are modeled
        // cycles (not time on this thread), and a span with a parent
        // is already inside its parent's duration.
        let mut workers: BTreeMap<u64, (u64, u64, u64, u64, u64)> = BTreeMap::new();
        for s in &trace.spans {
            let w = workers
                .entry(s.tid)
                .or_insert((0, 0, 0, u64::MAX, 0));
            w.0 += 1;
            if s.name == "queue.wait" {
                w.2 = w.2.saturating_add(s.dur_us);
            } else if !s.name.starts_with("hwsim.") && s.parent == 0 {
                w.1 = w.1.saturating_add(s.dur_us);
            }
            if !s.name.starts_with("hwsim.") {
                w.3 = w.3.min(s.start_us);
                w.4 = w.4.max(s.end_us());
            }
        }
        let workers: Vec<WorkerAgg> = workers
            .into_iter()
            .map(|(tid, (spans, busy, wait, first, last))| {
                let lifetime = if first == u64::MAX { 0 } else { last.saturating_sub(first) };
                WorkerAgg {
                    tid,
                    spans,
                    busy_us: busy,
                    wait_us: wait,
                    idle_us: lifetime.saturating_sub(busy).saturating_sub(wait),
                }
            })
            .collect();

        // Critical path per pair.
        let mut per_pair: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
        for s in &trace.spans {
            if s.pair == NO_PAIR {
                continue;
            }
            let p = per_pair.entry(s.pair).or_insert((0, 0, 0, 0));
            match s.name.as_str() {
                "seed" | "seed.table" => p.0 = p.0.saturating_add(s.dur_us),
                "filter.batch" => p.1 = p.1.max(s.dur_us),
                "extend" => p.2 = p.2.saturating_add(s.dur_us),
                "extend.tile" => p.3 = p.3.saturating_add(s.dur_us),
                _ => {}
            }
        }
        let pairs = per_pair.len() as u64;
        let mut critical: Option<PairPath> = None;
        for (&pair, &(seed_us, filter_us, lanes, tiles)) in &per_pair {
            let extend_us = if lanes > 0 { lanes } else { tiles };
            let total_us = seed_us.saturating_add(filter_us).saturating_add(extend_us);
            let better = critical.as_ref().is_none_or(|c| total_us > c.total_us);
            if better {
                critical = Some(PairPath {
                    pair,
                    seed_us,
                    filter_us,
                    extend_us,
                    total_us,
                });
            }
        }

        let mut wall_min = u64::MAX;
        let mut wall_max = 0u64;
        for s in &trace.spans {
            if s.name.starts_with("hwsim.") {
                continue;
            }
            wall_min = wall_min.min(s.start_us);
            wall_max = wall_max.max(s.end_us());
        }
        let wall_us = if wall_min == u64::MAX { 0 } else { wall_max - wall_min };

        let filter_spans: Vec<&SpanRec> = trace.spans_named("filter.batch").collect();
        let extend_spans: Vec<&SpanRec> = trace.spans_named("extend.tile").collect();
        let extended_tiles = extend_spans.len() as u64;
        let spec_discard = trace.counter("shard.spec_discard");
        let fault_spans = trace.spans_named("fault").count() as u64;

        Attribution {
            stages,
            seed_share_centi: share_centi(seed_t, pipeline_t),
            filter_share_centi: share_centi(filter_t, pipeline_t),
            extend_share_centi: share_centi(extend_t, pipeline_t),
            workers,
            pairs,
            critical,
            wall_us,
            top_filter_batches: top_k(&filter_spans, k),
            top_extend_tiles: top_k(&extend_spans, k),
            spec_discard,
            extended_tiles,
            discard_centi: share_centi(spec_discard, spec_discard.saturating_add(extended_tiles)),
            fault_spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceFile;

    fn span(name: &str, pair: u64, seq: u64, start: u64, dur: u64, parent: u64) -> String {
        format!(
            "{{\"span\":\"{name}\",\"pair\":{pair},\"strand\":2,\"seq\":{seq},\"start_us\":{start},\"dur_us\":{dur},\"items\":1,\"cells\":10,\"tid\":1,\"id\":{},\"parent\":{parent}}}",
            seq + 100
        )
    }

    fn mini_trace() -> TraceFile {
        let lines = vec![
            "{\"schema\":2}".to_string(),
            span("seed", 0, 0, 0, 10, 0),
            span("filter.batch", 0, 0, 10, 30, 0),
            span("filter.batch", 0, 1, 10, 20, 0),
            span("extend", 0, 0, 40, 25, 0),
            span("extend.tile", 0, 0, 41, 12, 100),
            span("extend.tile", 0, 1, 53, 11, 100),
            span("seed", 1, 0, 0, 5, 0),
            span("filter.batch", 1, 0, 5, 8, 0),
            "{\"counter\":\"shard.spec_discard\",\"value\":2}".to_string(),
        ];
        TraceFile::parse(&lines.join("\n")).expect("trace parses")
    }

    #[test]
    fn stages_cover_all_span_names_in_fixed_order() {
        let a = Attribution::compute(&mini_trace(), 5);
        assert_eq!(a.stages.len(), wga_core::obs::SpanName::ALL.len());
        assert_eq!(a.stages[0].stage, "seed");
        assert_eq!(a.stages[0].spans, 2);
        assert_eq!(a.stages[0].total_us, 15);
        let cp = a.stages.iter().find(|s| s.stage == "checkpoint").unwrap();
        assert_eq!(cp.spans, 0, "zero-span stages stay in the list");
    }

    #[test]
    fn shares_use_lane_time_and_sum_below_100pct() {
        let a = Attribution::compute(&mini_trace(), 5);
        // seed 15, filter 58, extend(lane) 25 => denom 98.
        assert_eq!(a.seed_share_centi, 15 * 10_000 / 98);
        assert_eq!(a.filter_share_centi, 58 * 10_000 / 98);
        assert_eq!(a.extend_share_centi, 25 * 10_000 / 98);
        assert!(a.seed_share_centi + a.filter_share_centi + a.extend_share_centi <= 10_000);
    }

    #[test]
    fn critical_path_picks_heaviest_pair_with_max_batch() {
        let a = Attribution::compute(&mini_trace(), 5);
        assert_eq!(a.pairs, 2);
        let c = a.critical.expect("has pairs");
        // pair 0: seed 10 + max-batch 30 + lane 25 = 65; pair 1: 5 + 8 = 13.
        assert_eq!(c.pair, 0);
        assert_eq!(c.total_us, 65);
        assert_eq!(c.filter_us, 30);
    }

    #[test]
    fn nested_tiles_do_not_double_count_busy() {
        let a = Attribution::compute(&mini_trace(), 5);
        assert_eq!(a.workers.len(), 1);
        let w = &a.workers[0];
        // Busy is top-level spans only: 10+30+20+25+5+8 = 98 (tiles nested under lane).
        assert_eq!(w.busy_us, 98);
        assert_eq!(w.wait_us, 0);
        assert_eq!(w.spans, 8);
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let a = Attribution::compute(&mini_trace(), 1);
        assert_eq!(a.top_filter_batches.len(), 1);
        assert_eq!(a.top_filter_batches[0].dur_us, 30);
        assert_eq!(a.top_extend_tiles[0].dur_us, 12);
    }

    #[test]
    fn speculation_rollup_uses_committed_tiles() {
        let a = Attribution::compute(&mini_trace(), 5);
        assert_eq!(a.spec_discard, 2);
        assert_eq!(a.extended_tiles, 2);
        assert_eq!(a.discard_centi, 5_000);
    }

    #[test]
    fn empty_trace_attributes_to_zero() {
        let t = TraceFile::parse("{\"schema\":2}\n").unwrap();
        let a = Attribution::compute(&t, 5);
        assert_eq!(a.pairs, 0);
        assert!(a.critical.is_none());
        assert_eq!(a.wall_us, 0);
        assert_eq!(a.seed_share_centi, 0);
    }
}
