//! Exon recovery with a TBLASTX-defined oracle — the paper's §V-E
//! methodology, made possible by the `protein` crate (§IX future work).
//!
//! The paper could not know which exons were genuinely alignable, so it
//! used TBLASTX (protein-space search, far more sensitive for coding
//! sequence) to define the "Total" column of Table III, then counted how
//! many of those exons each DNA aligner's chains covered. We replicate
//! that exact protocol: our translated search defines the alignable exon
//! set; both pipelines are scored against it; ground truth (which the
//! paper lacked) is printed alongside for calibration.
//!
//! Run with: `cargo run --release -p wga-bench --bin exons_tblastx`
//! Optional args: `[genome_len]` (default 60000).

use genome::annotation::Interval;
use genome::evolve::SpeciesPair;
use protein::search::{tblastx, TblastxParams};
use wga_bench::{paper_pair, run_and_measure};
use wga_core::config::WgaParams;

fn main() {
    let genome_len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);

    println!("Exon recovery with a TBLASTX-like oracle ({genome_len}-bp pairs)\n");
    println!(
        "{:<14} | {:>6} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "pair", "exons", "tblastx-ok", "LZ found", "LZ %", "DW found", "DW %"
    );

    for (i, sp) in SpeciesPair::paper_pairs().iter().enumerate() {
        let pair = paper_pair(sp, genome_len, 3000 + i as u64);

        // Oracle: an exon is "alignable" when the translated search finds
        // a hit overlapping it. Run tblastx per exon window (plus margin)
        // to keep the search tractable and targeted, as the paper ran
        // TBLASTX per annotated exon.
        let params = TblastxParams::default();
        let mut alignable: Vec<&Interval> = Vec::new();
        for exon in &pair.target.conserved {
            let margin = 60usize;
            let t0 = exon.start.saturating_sub(margin);
            let t1 = (exon.end + margin).min(pair.target.sequence.len());
            let window = pair.target.sequence.subsequence(t0..t1);
            // Search the window against the whole query genome.
            let hits = tblastx(&window, &pair.query.sequence, &params);
            if !hits.is_empty() {
                alignable.push(exon);
            }
        }

        // DNA pipelines, scored against the tblastx-alignable set.
        let score = |params: WgaParams| {
            let m = run_and_measure(params, &pair);
            let alignments = m.report.forward_alignments();
            let exons: Vec<Interval> = alignable.iter().map(|&e| e.clone()).collect();
            chain::metrics::exon_recovery(&m.chains, &alignments, &exons, 0.5).found
        };
        let lz = score(WgaParams::lastz_baseline());
        let dw = score(WgaParams::darwin_wga());
        let denom = alignable.len().max(1);
        println!(
            "{:<14} | {:>6} {:>10} | {:>9} {:>8.1}% | {:>9} {:>8.1}%",
            sp.name(),
            pair.target.conserved.len(),
            alignable.len(),
            lz,
            lz as f64 / denom as f64 * 100.0,
            dw,
            dw as f64 / denom as f64 * 100.0,
        );
    }

    println!("\nPaper (Table III exon columns): Darwin-WGA covers more TBLASTX-confirmed");
    println!("exons than LASTZ on every pair (+2.70% for ce11-cb4 down to +0.09%).");
    println!("Expected shape: DW% ≥ LZ%, with the gap growing with distance; the");
    println!("tblastx-ok column shrinks with distance as exons diverge beyond even");
    println!("protein-level detection (the paper's 'Total' column behaves the same).");
}
