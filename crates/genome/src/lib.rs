//! Genome substrate for the Darwin-WGA reproduction.
//!
//! This crate provides everything the aligner needs below the alignment
//! layer: the DNA alphabet and sequences, FASTA I/O, scoring matrices,
//! sequence statistics, a dinucleotide-preserving shuffler (for the paper's
//! false-positive analysis), and a synthetic two-lineage evolution model
//! that substitutes for the real genome assemblies of Table I.
//!
//! # Quick start
//!
//! ```
//! use genome::evolve::{EvolutionParams, SyntheticPair};
//! use rand::SeedableRng;
//!
//! // A synthetic species pair at 0.2 substitutions/site.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let pair = SyntheticPair::generate(50_000, &EvolutionParams::at_distance(0.2), &mut rng);
//!
//! // Ground truth the paper never had:
//! let orthologs = pair.orthologous_pairs();
//! assert!(orthologs.len() > 40_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alphabet;
pub mod annotation;
pub mod assembly;
pub mod evolve;
pub mod fasta;
pub mod markov;
pub mod scoring;
pub mod sequence;
pub mod shuffle;
pub mod stats;

pub use alphabet::{Base, ParseBaseError};
pub use scoring::{GapPenalties, SubstitutionMatrix};
pub use sequence::Sequence;
