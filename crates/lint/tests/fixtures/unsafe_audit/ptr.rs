//! Unsafe fixture: one annotated block (clean), one bare (site), one
//! waived. A doc comment merely *mentioning* SAFETY: must not count
//! as an annotation.

/// Reads out of a raw buffer. Callers uphold SAFETY: by construction.
pub fn annotated(p: *const u8, i: usize, len: usize) -> u8 {
    assert!(i < len);
    // SAFETY: i is bounds-checked against len on the line above.
    unsafe { *p.add(i) }
}

pub fn bare(p: *const u8) -> u8 {
    unsafe { *p } // site: no SAFETY comment in reach
}

// lint: allow(unsafe): fixture waiver — annotated elsewhere
pub fn waived(p: *const u8) -> u8 {
    unsafe { *p }
}
