//! Shard-determinism wall: intra-pair sharding must be invisible in the
//! canonical output.
//!
//! PR 7 partitions seed-table builds, D-SOFT binning, and extension
//! commits into self-scheduled shards claimed by whichever worker is
//! free, so the *execution order* varies freely with thread count and
//! scheduler timing. These tests pin the contract that the *output*
//! does not: `canonical_text` is byte-identical to the unsharded serial
//! baseline across executors x thread counts x shard sizes, and stays
//! identical when a seeded fault plan forces shard-level retries along
//! the way.

use darwin_wga::core::config::WgaParams;
use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::faultsim::FaultPlan;
use darwin_wga::core::genome_pipeline::{align_assemblies_with, AlignOptions, AssemblyReport};
use darwin_wga::genome::assembly::Assembly;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Two target chromosomes against one query chromosome: one related
/// pair big enough to split into many shards at `shard_bases = 256`,
/// plus an unrelated pair so pair-level bookkeeping is also exercised.
fn assemblies() -> (Assembly, Assembly) {
    let mut rng = StdRng::seed_from_u64(2024);
    let p = SyntheticPair::generate(12_000, &EvolutionParams::at_distance(0.25), &mut rng);
    let decoy = SyntheticPair::generate(4_000, &EvolutionParams::at_distance(0.5), &mut rng);
    let mut target = Assembly::new("t");
    target.push("chrI", p.target.sequence.clone());
    target.push("chrII", decoy.target.sequence.clone());
    let mut query = Assembly::new("q");
    query.push("chr1", p.query.sequence.clone());
    (target, query)
}

/// Runs an alignment on its own thread with a hard deadline so a
/// scheduling deadlock fails the test instead of hanging the job.
fn run_within(
    secs: u64,
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
    opts: AlignOptions,
    label: &str,
) -> AssemblyReport {
    let (tx, rx) = mpsc::channel();
    let params = params.clone();
    let target = target.clone();
    let query = query.clone();
    thread::spawn(move || {
        let _ = tx.send(align_assemblies_with(&params, &target, &query, &opts));
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("{label}: run exceeded {secs}s deadline"))
        .unwrap_or_else(|e| panic!("{label}: run errored: {e}"))
}

/// The matrix under test: serial is the 1-thread barrier path; the
/// wider rows exercise self-scheduled shard claiming on both pools.
const MATRIX: [(&str, usize, ExecutorKind); 5] = [
    ("serial", 1, ExecutorKind::Barrier),
    ("barrier-2", 2, ExecutorKind::Barrier),
    ("barrier-8", 8, ExecutorKind::Barrier),
    ("dataflow-2", 2, ExecutorKind::Dataflow),
    ("dataflow-8", 8, ExecutorKind::Dataflow),
];

fn plan(seed: u64, faults: &str) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::parse(&format!(
            "{{\"format\":\"wga-fault-plan\",\"version\":1,\"seed\":{seed},\"faults\":[{faults}]}}"
        ))
        .expect("fault plan parses"),
    )
}

#[test]
fn sharded_runs_match_unsharded_baseline() {
    let (target, query) = assemblies();
    // Baseline: serial executor, shards effectively disabled by a shard
    // floor larger than any chromosome.
    let unsharded = WgaParams::darwin_wga().with_shard_bases(1 << 30);
    let baseline = run_within(
        120,
        &unsharded,
        &target,
        &query,
        AlignOptions { threads: 1, ..AlignOptions::default() },
        "unsharded baseline",
    );
    assert!(
        !baseline.alignments.is_empty(),
        "baseline must produce alignments for the comparison to bite"
    );
    let golden = baseline.canonical_text();
    // Small shards force every stage through the sharded paths even on
    // this modest pair (12 kb / 256 b floor = dozens of work items).
    let sharded = WgaParams::darwin_wga().with_shard_bases(256);
    for (name, threads, executor) in MATRIX {
        let opts = AlignOptions { threads, executor, ..AlignOptions::default() };
        let report = run_within(120, &sharded, &target, &query, opts, name);
        assert_eq!(
            golden,
            report.canonical_text(),
            "{name}: sharded output diverged from unsharded serial baseline"
        );
    }
}

#[test]
fn sharded_runs_match_under_fault_injection() {
    // Shard-level retries must escalate exactly like pair-level ones:
    // recoverable faults at the first filter batch and the first
    // extension tile are retried, and the recovered output is still
    // byte-identical to the clean unsharded baseline on every
    // executor x thread-count row.
    let (target, query) = assemblies();
    let unsharded = WgaParams::darwin_wga().with_shard_bases(1 << 30);
    let clean = run_within(
        120,
        &unsharded,
        &target,
        &query,
        AlignOptions { threads: 1, ..AlignOptions::default() },
        "clean baseline",
    );
    let golden = clean.canonical_text();
    let sharded = WgaParams::darwin_wga().with_shard_bases(256);
    let faults = concat!(
        "{\"hook\":\"filter.batch\",\"kind\":\"error\",\"at\":[0],\"ms\":1},",
        "{\"hook\":\"extend.tile\",\"kind\":\"error\",\"at\":[0],\"ms\":1}"
    );
    for (name, threads, executor) in MATRIX {
        let opts = AlignOptions {
            threads,
            executor,
            max_retries: 2,
            fault_plan: Some(plan(17, faults)),
            ..AlignOptions::default()
        };
        let report = run_within(120, &sharded, &target, &query, opts, name);
        assert_eq!(
            golden,
            report.canonical_text(),
            "{name}: recovered faults must not change sharded output"
        );
    }
}

#[test]
fn sharded_panic_escalates_to_identical_pair_failure() {
    // A panicking extension tile is *not* retried: it fails exactly the
    // pair that owns it, on every executor. With speculative helpers the
    // panic may first surface on a worker thread far from the commit
    // point — the commit loop must still re-raise it at the same anchor
    // the serial path would, so the failed-pair report is byte-identical
    // across the whole matrix.
    let (target, query) = assemblies();
    let sharded = WgaParams::darwin_wga().with_shard_bases(256);
    let fault = "{\"hook\":\"extend.tile\",\"kind\":\"panic\",\"at\":[0],\"ms\":1}";
    let mut reference: Option<String> = None;
    for (name, threads, executor) in MATRIX {
        let opts = AlignOptions {
            threads,
            executor,
            max_retries: 2,
            fault_plan: Some(plan(17, fault)),
            ..AlignOptions::default()
        };
        let report = run_within(120, &sharded, &target, &query, opts, name);
        let text = report.canonical_text();
        assert!(
            text.contains("pair\tchrI\tchr1\tfailed"),
            "{name}: the faulted pair must fail"
        );
        match &reference {
            None => reference = Some(text),
            Some(golden) => assert_eq!(
                golden,
                &text,
                "{name}: pair failure must be identical across executors"
            ),
        }
    }
}
