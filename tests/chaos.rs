//! Chaos suite: deterministic fault injection through the supervised
//! retry/backoff layer, across all three executors.
//!
//! The invariants under test mirror DESIGN.md's escalation ladder:
//!
//! * every (hook x kind) injection terminates — no hangs, no aborts of
//!   the whole run unless the plan explicitly panics outside pair
//!   containment (the "kill" scenario);
//! * the same `--fault-plan` + seed yields the same injection sites,
//!   the same retry counts, and byte-identical `canonical_text` across
//!   the serial, barrier, and dataflow executors for completing pairs;
//! * retry-budget exhaustion fails exactly the targeted pair, on every
//!   executor, identically;
//! * a run killed at an injected fault point resumes from its
//!   checkpoint into the byte-identical golden report.

use darwin_wga::core::config::WgaParams;
use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::faultsim::FaultPlan;
use darwin_wga::core::genome_pipeline::{align_assemblies_with, AlignOptions, AssemblyReport};
use darwin_wga::core::report::RunOutcome;
use darwin_wga::genome::assembly::Assembly;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// One small chromosome pair: fast enough for the hook x kind matrix.
fn one_pair_assemblies() -> (Assembly, Assembly) {
    let mut rng = StdRng::seed_from_u64(11);
    let p = SyntheticPair::generate(3_000, &EvolutionParams::at_distance(0.2), &mut rng);
    let mut target = Assembly::new("t");
    target.push("chrI", p.target.sequence.clone());
    let mut query = Assembly::new("q");
    query.push("chr1", p.query.sequence.clone());
    (target, query)
}

/// Four pairs (2x2 cross product): enough structure for pair-scoped
/// faults and surviving-pair comparisons.
fn four_pair_assemblies() -> (Assembly, Assembly) {
    let mut rng = StdRng::seed_from_u64(77);
    let p1 = SyntheticPair::generate(9_000, &EvolutionParams::at_distance(0.2), &mut rng);
    let p2 = SyntheticPair::generate(7_000, &EvolutionParams::at_distance(0.2), &mut rng);
    let mut target = Assembly::new("t");
    target.push("chrI", p1.target.sequence.clone());
    target.push("chrII", p2.target.sequence.clone());
    let mut query = Assembly::new("q");
    query.push("chr1", p1.query.sequence.clone());
    query.push("chr2", p2.query.sequence.clone());
    (target, query)
}

fn plan(seed: u64, faults: &str) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::parse(&format!(
            "{{\"format\":\"wga-fault-plan\",\"version\":1,\"seed\":{seed},\"faults\":[{faults}]}}"
        ))
        .expect("fault plan parses"),
    )
}

fn journal_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "wga-chaos-{}-{}.jsonl",
        std::process::id(),
        name
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Runs an alignment on its own thread with a hard deadline, so a
/// supervision bug that hangs a queue fails the test instead of the CI
/// job. Panics inside the run also fail here, with the payload message.
fn run_within(
    secs: u64,
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
    opts: AlignOptions,
    label: &str,
) -> AssemblyReport {
    let (tx, rx) = mpsc::channel();
    let params = params.clone();
    let target = target.clone();
    let query = query.clone();
    thread::spawn(move || {
        let _ = tx.send(align_assemblies_with(&params, &target, &query, &opts));
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("{label}: run exceeded {secs}s deadline"))
        .unwrap_or_else(|e| panic!("{label}: run errored: {e}"))
}

/// The three drivers under test: serial, barrier, streaming dataflow.
const EXECUTORS: [(&str, usize, ExecutorKind); 3] = [
    ("serial", 1, ExecutorKind::Barrier),
    ("barrier", 3, ExecutorKind::Barrier),
    ("dataflow", 3, ExecutorKind::Dataflow),
];

/// Every hook x kind combination that stays inside pair containment
/// terminates with a well-formed report on every executor where the
/// hook can fire. `at:[0]` with `max_retries: 2` means recoverable
/// kinds retry and complete; `panic` fails the pair but never the run.
#[test]
fn fault_matrix_terminates_on_every_executor() {
    let (target, query) = one_pair_assemblies();
    let params = WgaParams::darwin_wga();
    let kinds = ["error", "panic", "latency", "short-write"];
    for kind in kinds {
        // Compute-stage hooks fire on all three executors.
        for hook in ["filter.batch", "extend.tile"] {
            for (name, threads, executor) in EXECUTORS {
                let opts = AlignOptions {
                    threads,
                    executor,
                    max_retries: 2,
                    fault_plan: Some(plan(
                        9,
                        &format!("{{\"hook\":\"{hook}\",\"kind\":\"{kind}\",\"at\":[0],\"ms\":1}}"),
                    )),
                    ..AlignOptions::default()
                };
                let report = run_within(60, &params, &target, &query, opts, hook);
                assert_eq!(report.pairs.len(), 1, "{hook}/{kind}/{name}");
            }
        }
        // Queue hooks only exist on the dataflow executor.
        for hook in ["queue.push", "queue.pop"] {
            let opts = AlignOptions {
                threads: 3,
                executor: ExecutorKind::Dataflow,
                queue_depth: 1,
                max_retries: 2,
                fault_plan: Some(plan(
                    9,
                    &format!("{{\"hook\":\"{hook}\",\"kind\":\"{kind}\",\"at\":[0],\"ms\":1}}"),
                )),
                ..AlignOptions::default()
            };
            let report = run_within(60, &params, &target, &query, opts, hook);
            assert_eq!(report.pairs.len(), 1, "{hook}/{kind}/dataflow");
        }
        // Journal hooks fire on checkpointed runs. `panic` here lands
        // outside pair containment by design (the "kill" scenario,
        // covered by kill_at_injected_fault_then_resume_matches_golden).
        if kind != "panic" {
            for hook in ["journal.append", "journal.sync"] {
                for (name, threads, executor) in EXECUTORS {
                    let path = journal_path(&format!("matrix-{hook}-{kind}-{name}"));
                    let opts = AlignOptions {
                        threads,
                        executor,
                        checkpoint: Some(path.clone()),
                        max_retries: 2,
                        fault_plan: Some(plan(
                            9,
                            &format!(
                                "{{\"hook\":\"{hook}\",\"kind\":\"{kind}\",\"at\":[0],\"ms\":1}}"
                            ),
                        )),
                        ..AlignOptions::default()
                    };
                    let report = run_within(60, &params, &target, &query, opts, hook);
                    assert_eq!(report.pairs.len(), 1, "{hook}/{kind}/{name}");
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
    }
}

/// Recoverable injections are invisible in canonical output and
/// accounted identically everywhere: the same plan + seed produces the
/// same injection count, the same retry count, and byte-identical
/// canonical text on all three executors — which also equals the
/// fault-free run, because every fault was absorbed by a retry.
#[test]
fn same_plan_is_deterministic_across_executors() {
    let (target, query) = four_pair_assemblies();
    let params = WgaParams::darwin_wga();
    let clean = run_within(
        120,
        &params,
        &target,
        &query,
        AlignOptions::default(),
        "clean",
    );
    let faults = "{\"hook\":\"filter.batch\",\"kind\":\"error\",\"at\":[0]},\
                  {\"hook\":\"extend.tile\",\"kind\":\"error\",\"at\":[0]}";
    let mut seen: Vec<(String, u64, u64)> = Vec::new();
    for (name, threads, executor) in EXECUTORS {
        let opts = AlignOptions {
            threads,
            executor,
            max_retries: 2,
            fault_plan: Some(plan(42, faults)),
            ..AlignOptions::default()
        };
        let report = run_within(120, &params, &target, &query, opts, name);
        for pair in &report.pairs {
            assert!(
                matches!(pair.outcome, RunOutcome::Completed),
                "{name}: {}x{} should absorb the fault via retry: {:?}",
                pair.target_chrom,
                pair.query_chrom,
                pair.outcome
            );
        }
        assert_eq!(
            report.canonical_text(),
            clean.canonical_text(),
            "{name}: recovered faults must not change output"
        );
        seen.push((
            name.to_string(),
            report.counters.faults_injected,
            report.counters.retries,
        ));
    }
    let (_, injected0, retries0) = &seen[0];
    assert!(*injected0 > 0, "plan must actually fire: {seen:?}");
    assert!(*retries0 > 0, "injected errors must consume retries: {seen:?}");
    for (name, injected, retries) in &seen[1..] {
        assert_eq!(injected, injected0, "{name} injection count diverged: {seen:?}");
        assert_eq!(retries, retries0, "{name} retry count diverged: {seen:?}");
    }
}

/// Exhausting the retry budget on one pair fails exactly that pair —
/// identically on the serial, barrier, and dataflow executors — while
/// every other pair completes untouched.
#[test]
fn retry_exhaustion_fails_the_same_pair_on_every_executor() {
    let (target, query) = four_pair_assemblies();
    let params = WgaParams::darwin_wga();
    // max_retries 1 allows attempts 0 and 1; injecting occurrences 0..2
    // guarantees exhaustion no matter how the retry interleaves.
    let faults =
        "{\"hook\":\"filter.batch\",\"kind\":\"error\",\"at\":[0,1,2],\"pair\":1}";
    let mut canon: Vec<(String, String)> = Vec::new();
    for (name, threads, executor) in EXECUTORS {
        let opts = AlignOptions {
            threads,
            executor,
            max_retries: 1,
            fault_plan: Some(plan(13, faults)),
            ..AlignOptions::default()
        };
        let report = run_within(120, &params, &target, &query, opts, name);
        assert_eq!(report.pairs.len(), 4, "{name}");
        for (idx, pair) in report.pairs.iter().enumerate() {
            if idx == 1 {
                match &pair.outcome {
                    RunOutcome::Failed { error } => assert!(
                        error.contains("retries exhausted"),
                        "{name}: unexpected failure message: {error}"
                    ),
                    other => panic!("{name}: pair 1 should fail, got {other:?}"),
                }
            } else {
                assert!(
                    matches!(pair.outcome, RunOutcome::Completed),
                    "{name}: pair {idx} should be untouched: {:?}",
                    pair.outcome
                );
            }
        }
        canon.push((name.to_string(), report.canonical_text()));
    }
    for (name, text) in &canon[1..] {
        assert_eq!(
            text, &canon[0].1,
            "{name} diverged from {} under exhaustion",
            canon[0].0
        );
    }
}

/// A run killed by an injected panic at the journal-append hook (the
/// moral equivalent of `kill -9` mid-checkpoint) resumes from the
/// journal into the byte-identical golden report.
#[test]
fn kill_at_injected_fault_then_resume_matches_golden() {
    let (target, query) = four_pair_assemblies();
    let params = WgaParams::darwin_wga();
    let golden = run_within(
        120,
        &params,
        &target,
        &query,
        AlignOptions::default(),
        "golden",
    );

    let path = journal_path("kill-at-fault");
    // Pair-scoped panic at the append for pair 2: pairs 0 and 1 are
    // journalled, then the run dies outside pair containment.
    let opts = AlignOptions {
        threads: 1,
        checkpoint: Some(path.clone()),
        fault_plan: Some(plan(
            5,
            "{\"hook\":\"journal.append\",\"kind\":\"panic\",\"at\":[0],\"pair\":2}",
        )),
        ..AlignOptions::default()
    };
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        align_assemblies_with(&params, &target, &query, &opts)
    }));
    assert!(crashed.is_err(), "injected journal panic must kill the run");

    let resume = AlignOptions {
        threads: 2,
        checkpoint: Some(path.clone()),
        ..AlignOptions::default()
    };
    let resumed = run_within(120, &params, &target, &query, resume, "resume");
    assert_eq!(resumed.resumed_pairs, 2, "two pairs survived the kill");
    assert_eq!(resumed.canonical_text(), golden.canonical_text());
    let _ = std::fs::remove_file(&path);
}

/// Injected worker panics under the tightest queue configuration
/// (`queue_depth 1`) shut the dataflow executor down cleanly at 1, 2,
/// and 8 threads: the poisoned pair lands `Failed`, the queues drain,
/// and the surviving pairs' output is byte-identical to a fault-free
/// run.
#[test]
fn dataflow_shutdown_is_clean_under_injected_panics() {
    let (target, query) = four_pair_assemblies();
    let params = WgaParams::darwin_wga();
    let clean = run_within(
        120,
        &params,
        &target,
        &query,
        AlignOptions::default(),
        "clean",
    );
    // Pair 3 (chrII x chr2) is a related pair with real extension work;
    // the unrelated cross pairs produce no anchors, so their
    // `extend.tile` hook never fires. Two panics: the injected one,
    // then the poisoned-pair re-abort if anything retries into it.
    let faults = "{\"hook\":\"extend.tile\",\"kind\":\"panic\",\"at\":[0,1],\"pair\":3}";
    for threads in [1, 2, 8] {
        let label = format!("dataflow t={threads}");
        let opts = AlignOptions {
            threads,
            executor: ExecutorKind::Dataflow,
            queue_depth: 1,
            fault_plan: Some(plan(3, faults)),
            ..AlignOptions::default()
        };
        let report = run_within(120, &params, &target, &query, opts, &label);
        assert_eq!(report.pairs.len(), 4, "{label}");
        let failed = &report.pairs[3];
        match &failed.outcome {
            RunOutcome::Failed { error } => assert!(
                error.contains("injected fault"),
                "{label}: unexpected failure message: {error}"
            ),
            other => panic!("{label}: pair 3 should fail, got {other:?}"),
        }
        // Surviving pairs: same pair/aln lines as the clean run, once
        // the failed pair's lines and the (necessarily smaller)
        // workload totals are set aside.
        let failed_tag = format!("\t{}\t{}\t", failed.target_chrom, failed.query_chrom);
        let survivors = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| !l.contains(&failed_tag) && !l.starts_with("workload\t"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            survivors(&report.canonical_text()),
            survivors(&clean.canonical_text()),
            "{label}: surviving pairs diverged from the fault-free run"
        );
    }
}

/// A stalled dataflow stage (injected 60s latency) is detected by the
/// heartbeat watchdog, aborted, and surfaced as a pair-level failure —
/// the run finishes orders of magnitude before the injected sleep.
#[test]
fn watchdog_escalates_injected_stall_to_pair_failure() {
    let (target, query) = four_pair_assemblies();
    let params = WgaParams::darwin_wga();
    let opts = AlignOptions {
        threads: 2,
        executor: ExecutorKind::Dataflow,
        queue_depth: 1,
        stall_timeout_ms: 300,
        // Pair 0 is a related pair, so its extension stage really runs
        // (the unrelated cross pairs never reach `extend.tile`).
        fault_plan: Some(plan(
            1,
            "{\"hook\":\"extend.tile\",\"kind\":\"latency\",\"at\":[0],\"ms\":60000,\"pair\":0}",
        )),
        ..AlignOptions::default()
    };
    // The 30s deadline is the real assertion: without the watchdog the
    // injected sleep holds a queue slot for a full minute.
    let report = run_within(30, &params, &target, &query, opts, "watchdog");
    assert!(
        report.counters.stalls_detected >= 1,
        "watchdog never fired: {:?}",
        report.counters
    );
    assert_eq!(report.pairs.len(), 4);
    let stalled: Vec<_> = report
        .pairs
        .iter()
        .filter(|p| matches!(p.outcome, RunOutcome::Failed { .. }))
        .collect();
    assert!(
        !stalled.is_empty(),
        "the stalled pair must land Failed: {:?}",
        report.pairs
    );
    match &report.pairs[0].outcome {
        RunOutcome::Failed { error } => assert!(
            error.contains("stall") || error.contains("dropped") || error.contains("fault"),
            "pair 0 failure should mention the stall: {error}"
        ),
        other => panic!("stalled pair 0 should fail, got {other:?}"),
    }
}
