//! The seed–filter–extend pipeline (Fig. 4, Fig. 6).
//!
//! [`WgaPipeline`] runs all three stages over a target/query pair. The
//! filtering and extension stages are swappable via [`crate::config`], so
//! the same driver is both Darwin-WGA (D-SOFT → BSW gapped filter →
//! GACT-X) and the LASTZ-like baseline (D-SOFT → ungapped filter →
//! Y-drop), matching the paper's design where only the middle stage
//! changes between the compared systems.

use crate::budget::{clamp_hits, deadline_event};
use crate::config::WgaParams;
use crate::error::WgaResult;
use crate::filter_engine::FilterContext;
use crate::obs::{strand_code, Obs, SpanName, STRAND_NA};
use crate::report::{StageKind, Strand, WgaReport};
use crate::stages::{extend_anchors, timed_seed_table};
use genome::Sequence;
use seed::{dsoft_seeds, Anchor, SeedTable};
use std::time::Instant;

/// A configured whole-genome-alignment pipeline.
///
/// # Examples
///
/// ```
/// use genome::evolve::{EvolutionParams, SyntheticPair};
/// use rand::SeedableRng;
/// use wga_core::{config::WgaParams, pipeline::WgaPipeline};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let pair = SyntheticPair::generate(20_000, &EvolutionParams::at_distance(0.15), &mut rng);
///
/// let pipeline = WgaPipeline::new(WgaParams::darwin_wga());
/// let report = pipeline.run(&pair.target.sequence, &pair.query.sequence);
/// assert!(report.total_matches() > 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct WgaPipeline {
    params: WgaParams,
}

impl WgaPipeline {
    /// Creates a pipeline with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate (see
    /// [`WgaParams::validate`]); use [`WgaPipeline::try_new`] for a typed
    /// error instead.
    pub fn new(params: WgaParams) -> WgaPipeline {
        let checked = params.validate();
        assert!(
            checked.is_ok(),
            "{}",
            checked.err().map(|e| e.to_string()).unwrap_or_default()
        );
        WgaPipeline { params }
    }

    /// Creates a pipeline, rejecting degenerate parameters with a typed
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::WgaError::Config`] when
    /// [`WgaParams::validate`] rejects the parameters.
    pub fn try_new(params: WgaParams) -> WgaResult<WgaPipeline> {
        params.validate()?;
        Ok(WgaPipeline { params })
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &WgaParams {
        &self.params
    }

    /// Runs the full pipeline on one target/query pair.
    pub fn run(&self, target: &Sequence, query: &Sequence) -> WgaReport {
        self.run_observed(target, query, Obs::off())
    }

    /// [`WgaPipeline::run`] with an observation handle. The report is
    /// byte-identical whether `obs` is live or [`Obs::off`]; the
    /// recorder only *watches* the run.
    pub fn run_observed(&self, target: &Sequence, query: &Sequence, obs: Obs<'_>) -> WgaReport {
        let mut buf = obs.buffer();
        let table_timer = buf.start();
        let (table, build_time) = timed_seed_table(&self.params, target);
        buf.finish(table_timer, SpanName::SeedTable, STRAND_NA, 0, 1, target.len() as u64);
        buf.flush();
        let mut report = self.run_with_table_observed(&table, target, query, obs);
        report.timings.seeding += build_time;
        report
    }

    /// Runs the pipeline against a pre-built seed table of `target`
    /// (table construction amortises across many query chromosomes).
    pub fn run_with_table(
        &self,
        table: &SeedTable,
        target: &Sequence,
        query: &Sequence,
    ) -> WgaReport {
        self.run_with_table_observed(table, target, query, Obs::off())
    }

    /// [`WgaPipeline::run_with_table`] with an observation handle.
    pub fn run_with_table_observed(
        &self,
        table: &SeedTable,
        target: &Sequence,
        query: &Sequence,
        obs: Obs<'_>,
    ) -> WgaReport {
        let pair_start = Instant::now();
        let mut report = WgaReport::default();
        self.run_strand(table, target, query, Strand::Forward, pair_start, &mut report, obs);
        if self.params.both_strands {
            let rc = query.reverse_complement();
            self.run_strand(table, target, &rc, Strand::Reverse, pair_start, &mut report, obs);
        }
        report
            .alignments
            .sort_by_key(|a| std::cmp::Reverse(a.alignment.score));
        report
    }

    /// Runs seeding/filtering/extension for one query strand, appending
    /// into `report`. `pair_start` anchors the per-pair deadline budget.
    #[allow(clippy::too_many_arguments)]
    fn run_strand(
        &self,
        table: &SeedTable,
        target: &Sequence,
        query: &Sequence,
        strand: Strand,
        pair_start: Instant,
        report: &mut WgaReport,
        obs: Obs<'_>,
    ) {
        let params = &self.params;
        let scode = strand_code(strand);
        let mut buf = obs.buffer();

        // --- Seeding ---------------------------------------------------
        let seed_timer = buf.start();
        let seed_start = Instant::now();
        let seeding = dsoft_seeds(table, query, &params.dsoft);
        report.timings.seeding += seed_start.elapsed();
        report.workload.seeds += seeding.seeds_queried;
        report.counters.raw_seed_hits += seeding.raw_hits;
        buf.finish(
            seed_timer,
            SpanName::Seed,
            scode,
            0,
            seeding.hits.len() as u64,
            seeding.seeds_queried,
        );

        // --- Filtering ---------------------------------------------------
        // Chaos hook: the serial driver runs one filter batch per
        // strand, so a `filter.batch` fault plan hits it here.
        obs.fault_gate(crate::faultsim::Hook::FilterBatch);
        let batch_timer = buf.start();
        let filter_start = Instant::now();
        let hits = clamp_hits(params, &seeding.hits, report);
        // One filter context per strand (the batched engine encodes the
        // pair here), one engine with reused scratch for the whole hit
        // stream.
        let filter_ctx = FilterContext::new(params, target, query);
        let mut engine = filter_ctx.engine();
        let mut anchors: Vec<Anchor> = Vec::new();
        let mut tiles = 0u64;
        let mut cells = 0u64;
        for &hit in hits {
            if params.budget.deadline_exceeded(pair_start) {
                report
                    .events
                    .push(deadline_event(&params.budget, StageKind::Filtering, pair_start));
                break;
            }
            let tile_timer = obs.timer();
            let outcome = engine.filter_hit(params, target, query, hit);
            obs.filter_tile(&tile_timer, outcome.cells);
            tiles += 1;
            cells += outcome.cells;
            report.workload.filter_tiles += 1;
            report.counters.hits_filtered += 1;
            if let Some(anchor) = outcome.anchor {
                anchors.push(anchor);
            }
        }
        report.counters.filter_cells += cells;
        report.timings.filtering += filter_start.elapsed();
        report.counters.anchors_passed += anchors.len() as u64;
        buf.finish(batch_timer, SpanName::FilterBatch, scode, 0, tiles, cells);
        buf.flush();

        // --- Extension ---------------------------------------------------
        extend_anchors(params, target, query, strand, anchors, pair_start, report, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WgaParams;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthetic(distance: f64, len: usize, seed: u64) -> SyntheticPair {
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticPair::generate(len, &EvolutionParams::at_distance(distance), &mut rng)
    }

    #[test]
    fn darwin_pipeline_aligns_close_pair() {
        let pair = synthetic(0.1, 30_000, 1);
        let report = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        // Ground truth has ~30K orthologous pairs at ~95% identity; the
        // pipeline must recover the bulk of them.
        let truth = pair.orthologous_pairs().len() as f64;
        let found = report.total_matches() as f64;
        assert!(found > 0.6 * truth, "found {found} of {truth}");
        // Funnel consistency.
        assert!(report.counters.hits_filtered > 0);
        assert!(report.counters.anchors_passed <= report.counters.hits_filtered);
        assert!(report.counters.alignments_kept <= report.counters.anchors_passed);
        assert_eq!(report.workload.filter_tiles, report.counters.hits_filtered);
    }

    #[test]
    fn alignments_validate_against_sequences() {
        let pair = synthetic(0.25, 20_000, 2);
        let report = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        assert!(!report.alignments.is_empty());
        for wa in &report.alignments {
            wa.alignment
                .validate(&pair.target.sequence, &pair.query.sequence)
                .unwrap();
            assert!(wa.alignment.score >= 4000);
        }
    }

    #[test]
    fn darwin_beats_lastz_baseline_on_distant_pair() {
        // The paper's headline: gapped filtering recovers more matched
        // bases, increasingly so with phylogenetic distance.
        let pair = synthetic(0.55, 40_000, 3);
        let darwin = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        let lastz = WgaPipeline::new(WgaParams::lastz_baseline())
            .run(&pair.target.sequence, &pair.query.sequence);
        assert!(
            darwin.total_matches() > lastz.total_matches(),
            "darwin {} vs lastz {}",
            darwin.total_matches(),
            lastz.total_matches()
        );
    }

    #[test]
    fn unrelated_sequences_produce_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = genome::markov::MarkovModel::genome_like().generate(20_000, &mut rng);
        let b = genome::markov::MarkovModel::genome_like().generate(20_000, &mut rng);
        let report = WgaPipeline::new(WgaParams::darwin_wga()).run(&a, &b);
        assert_eq!(report.alignments.len(), 0);
    }

    #[test]
    fn reverse_strand_is_found_when_enabled() {
        let pair = synthetic(0.1, 15_000, 5);
        let rc_query = pair.query.sequence.reverse_complement();
        let mut params = WgaParams::darwin_wga();
        params.both_strands = true;
        let report =
            WgaPipeline::new(params).run(&pair.target.sequence, &rc_query);
        let reverse_matches: u64 = report
            .alignments
            .iter()
            .filter(|a| a.strand == Strand::Reverse)
            .map(|a| a.alignment.matches())
            .sum();
        assert!(reverse_matches > 8_000, "{reverse_matches}");

        // Forward-only run on the reverse-complemented query finds ~nothing.
        let fwd_only = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &rc_query);
        assert!(fwd_only.total_matches() < reverse_matches / 4);
    }

    #[test]
    fn try_new_rejects_degenerate_config() {
        let mut params = WgaParams::darwin_wga();
        params.extension_threshold = -5;
        assert!(WgaPipeline::try_new(params).is_err());
        assert!(WgaPipeline::try_new(WgaParams::darwin_wga()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid configuration")]
    fn new_panics_on_degenerate_config() {
        let mut params = WgaParams::darwin_wga();
        params.max_seed_occurrences = 0;
        let _ = WgaPipeline::new(params);
    }

    #[test]
    fn filter_tile_budget_bounds_work_and_degrades() {
        use crate::config::ResourceBudget;
        use crate::report::{BudgetKind, RunEvent};

        let pair = synthetic(0.1, 30_000, 1);
        let unbounded = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        assert!(!unbounded.is_degraded());
        assert!(unbounded.workload.filter_tiles > 40);

        let cap = 40u64;
        let params = WgaParams::darwin_wga().with_budget(ResourceBudget {
            max_filter_tiles: Some(cap),
            ..ResourceBudget::default()
        });
        let capped = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
        assert_eq!(capped.workload.filter_tiles, cap);
        assert!(capped.is_degraded());
        assert!(capped.events.iter().any(|e| matches!(
            e,
            RunEvent::BudgetExceeded {
                budget: BudgetKind::FilterTiles,
                ..
            }
        )));
        // Deterministic: the same capped run twice is identical.
        let params2 = WgaParams::darwin_wga().with_budget(ResourceBudget {
            max_filter_tiles: Some(cap),
            ..ResourceBudget::default()
        });
        let again = WgaPipeline::new(params2).run(&pair.target.sequence, &pair.query.sequence);
        assert_eq!(capped.total_matches(), again.total_matches());
        assert_eq!(capped.events, again.events);
    }

    #[test]
    fn seed_hit_budget_truncates_per_strand() {
        use crate::config::ResourceBudget;
        use crate::report::{BudgetKind, RunEvent};

        let pair = synthetic(0.1, 30_000, 2);
        let params = WgaParams::darwin_wga().with_budget(ResourceBudget {
            max_seed_hits: Some(25),
            ..ResourceBudget::default()
        });
        let report = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
        assert!(report.counters.hits_filtered <= 25);
        assert!(report.events.iter().any(|e| matches!(
            e,
            RunEvent::BudgetExceeded {
                budget: BudgetKind::SeedHits,
                ..
            }
        )));
    }

    #[test]
    fn extension_cell_budget_bounds_cells() {
        use crate::config::ResourceBudget;
        use crate::report::{BudgetKind, RunEvent};

        // A moderately distant pair: turnover fragments the homology into
        // many blocks, so extension work spreads over many anchors and a
        // mid-run budget stop leaves real work undone.
        let pair = synthetic(0.3, 40_000, 3);
        let unbounded = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        let limit = unbounded.workload.extension_cells / 10;
        assert!(limit > 0);
        let params = WgaParams::darwin_wga().with_budget(ResourceBudget {
            max_extension_cells: Some(limit),
            ..ResourceBudget::default()
        });
        let capped = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
        assert!(capped.workload.extension_cells < unbounded.workload.extension_cells);
        assert!(capped.events.iter().any(|e| matches!(
            e,
            RunEvent::BudgetExceeded {
                budget: BudgetKind::ExtensionCells,
                ..
            }
        )));
    }

    #[test]
    fn absorption_limits_duplicate_alignments() {
        let pair = synthetic(0.1, 20_000, 6);
        let report = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        // With one long homologous region, most anchors are absorbed into
        // the first few alignments instead of re-extending.
        assert!(report.counters.anchors_absorbed > 0);
        assert!(report.counters.alignments_kept < report.counters.anchors_passed / 2);
    }
}
