//! Schema validation for `filter_throughput`'s `BENCH_filter.json`.
//!
//! Runs the bench binary on a tiny input (CI's bench smoke-step executes
//! this test) and checks the emitted JSON is well-formed and carries
//! every field downstream tooling reads. Deliberately **no performance
//! gating** — speedups vary with the host — beyond requiring non-zero
//! throughput numbers; the binary itself asserts that scalar, batched
//! and simd agree on cell counts and surviving tiles.

use wga_core::journal::json::{self, Json};

fn int_field(obj: &Json, key: &str) -> i128 {
    obj.get(key)
        .unwrap_or_else(|| panic!("missing field {key:?} in {obj:?}"))
        .as_int()
        .unwrap_or_else(|| panic!("field {key:?} is not an integer"))
}

fn check_engine(entry: &Json, engine: &str, tiles: i128) {
    let e = entry.get(engine).expect("engine object");
    let cells = int_field(e, "cells");
    let wall_us = int_field(e, "wall_us");
    let survived = int_field(e, "survived");
    assert!(cells > 0, "{engine}: cells must be positive");
    assert!(wall_us >= 0);
    assert!(int_field(e, "cells_per_sec") > 0, "{engine}: zero throughput");
    assert!(int_field(e, "tiles_per_sec") > 0);
    assert!(
        (0..=tiles).contains(&survived),
        "{engine}: survived {survived} out of {tiles} tiles"
    );
}

#[test]
fn bench_filter_json_matches_schema() {
    let out = std::env::temp_dir().join(format!("BENCH_filter_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_filter_throughput"))
        .args([
            "--tiles",
            "16",
            "--distances",
            "150,400",
            "--out",
            out.to_str().unwrap(),
        ])
        .status()
        .expect("bench binary runs");
    assert!(status.success(), "filter_throughput exited with {status}");

    let text = std::fs::read_to_string(&out).expect("bench wrote its JSON");
    let _ = std::fs::remove_file(&out);
    let doc = json::parse(&text).expect("BENCH_filter.json is valid JSON");

    assert_eq!(
        doc.get("bench").and_then(Json::as_str),
        Some("filter_throughput")
    );
    assert_eq!(int_field(&doc, "tile_size"), 320);
    assert_eq!(int_field(&doc, "band"), 32);
    assert_eq!(int_field(&doc, "threshold"), 4000);

    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 2, "one entry per requested distance");
    let mut seen = Vec::new();
    for entry in results {
        let milli = int_field(entry, "distance_milli");
        seen.push(milli);
        let tiles = int_field(entry, "tiles");
        assert_eq!(tiles, 16);
        check_engine(entry, "scalar", tiles);
        check_engine(entry, "batched", tiles);
        check_engine(entry, "simd", tiles);
        // All engines count the same DP cells on the same tile ladder.
        let sc = entry.get("scalar").unwrap();
        let ba = entry.get("batched").unwrap();
        let si = entry.get("simd").unwrap();
        assert_eq!(int_field(sc, "cells"), int_field(ba, "cells"));
        assert_eq!(int_field(sc, "survived"), int_field(ba, "survived"));
        assert_eq!(int_field(sc, "cells"), int_field(si, "cells"));
        assert_eq!(int_field(sc, "survived"), int_field(si, "survived"));
        assert!(int_field(entry, "speedup_centi") >= 0);
        assert!(int_field(entry, "simd_speedup_centi") >= 0);
    }
    assert_eq!(seen, vec![150, 400]);
}
