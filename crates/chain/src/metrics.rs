//! Sensitivity and noise metrics computed on chains (§V-E, §VI-B).
//!
//! The paper measures sensitivity three ways — top-10 chain scores,
//! matched base pairs in all chains, and recovered orthologous exons —
//! and noise as the false-positive rate against a dinucleotide-shuffled
//! target. All four metrics are implemented here, plus the ungapped
//! block-length distribution of Fig. 2.

use crate::chainer::Chain;
use align::{AlignOp, Alignment};
use genome::annotation::Interval;
use serde::{Deserialize, Serialize};

/// Scores of the top `k` chains (best first); shorter if fewer chains.
pub fn top_k_scores(chains: &[Chain], k: usize) -> Vec<i64> {
    let mut scores: Vec<i64> = chains.iter().map(|c| c.score).collect();
    scores.sort_unstable_by_key(|&s| std::cmp::Reverse(s));
    scores.truncate(k);
    scores
}

/// Sum of the top `k` chain scores.
pub fn top_k_total(chains: &[Chain], k: usize) -> i64 {
    top_k_scores(chains, k).iter().sum()
}

/// Total exactly-matching base pairs across all chains — the paper's
/// "Matched Base-Pairs Counts" column of Table III.
pub fn matched_bases(chains: &[Chain], alignments: &[Alignment]) -> u64 {
    chains.iter().map(|c| c.matched_bases(alignments)).sum()
}

/// Total *unique* matched target positions across all chains — like
/// [`matched_bases`] but counting each target coordinate at most once, so
/// overlapping alignments (paralogs mapping the same target region, or
/// partially duplicate extensions) cannot inflate the total. Use this for
/// apples-to-apples sensitivity comparisons between pipelines whose
/// duplicate-suppression differs.
pub fn unique_matched_bases(chains: &[Chain], alignments: &[Alignment]) -> u64 {
    let mut positions: Vec<(usize, usize)> = Vec::new();
    for chain in chains {
        for &i in &chain.members {
            let a = &alignments[i];
            let mut t = a.target_start;
            for &(op, count) in a.cigar.runs() {
                match op {
                    AlignOp::Match => {
                        positions.push((t, t + count as usize));
                        t += count as usize;
                    }
                    AlignOp::Subst | AlignOp::Delete => t += count as usize,
                    AlignOp::Insert => {}
                }
            }
        }
    }
    positions.sort_unstable();
    let mut total = 0u64;
    let mut covered_to = 0usize;
    for (s, e) in positions {
        let s = s.max(covered_to);
        if e > s {
            total += (e - s) as u64;
            covered_to = e;
        }
        covered_to = covered_to.max(e);
    }
    total
}

/// Target intervals covered by aligned (match or substitution) columns of
/// one alignment, merged.
pub fn aligned_target_intervals(alignment: &Alignment) -> Vec<(usize, usize)> {
    let mut intervals = Vec::new();
    let mut t = alignment.target_start;
    let mut open: Option<usize> = None;
    for &(op, count) in alignment.cigar.runs() {
        match op {
            AlignOp::Match | AlignOp::Subst => {
                if open.is_none() {
                    open = Some(t);
                }
                t += count as usize;
            }
            AlignOp::Delete => {
                if let Some(start) = open.take() {
                    intervals.push((start, t));
                }
                t += count as usize;
            }
            AlignOp::Insert => {
                if let Some(start) = open.take() {
                    intervals.push((start, t));
                }
            }
        }
    }
    if let Some(start) = open {
        intervals.push((start, t));
    }
    intervals
}

/// Exon-recovery counting (the Table III "Exon Counts" columns).
///
/// An exon (a target-coordinate interval) counts as *found* when chained
/// alignments cover at least `min_coverage` of its bases with aligned
/// columns. The paper approximated this oracle with TBLASTX; we have
/// ground-truth intervals from the evolution model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExonRecovery {
    /// Total exons assessed.
    pub total: usize,
    /// Exons covered at or above the threshold.
    pub found: usize,
    /// Coverage threshold used.
    pub min_coverage: f64,
}

impl ExonRecovery {
    /// Fraction of exons found.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.found as f64 / self.total as f64
        }
    }
}

/// Computes exon recovery for `exons` (target coordinates) against the
/// aligned columns of all chain members.
pub fn exon_recovery(
    chains: &[Chain],
    alignments: &[Alignment],
    exons: &[Interval],
    min_coverage: f64,
) -> ExonRecovery {
    // Collect all aligned target intervals, then per exon count overlap.
    let mut covered: Vec<(usize, usize)> = chains
        .iter()
        .flat_map(|c| c.members.iter())
        .flat_map(|&i| aligned_target_intervals(&alignments[i]))
        .collect();
    covered.sort_unstable();
    // Merge overlaps.
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(covered.len());
    for (s, e) in covered {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }

    let mut found = 0usize;
    for exon in exons {
        if exon.is_empty() {
            continue;
        }
        // Binary search the first merged interval that could overlap.
        let idx = merged.partition_point(|&(_, e)| e <= exon.start);
        let mut overlap = 0usize;
        for &(s, e) in &merged[idx..] {
            if s >= exon.end {
                break;
            }
            overlap += e.min(exon.end) - s.max(exon.start);
        }
        if overlap as f64 >= min_coverage * exon.len() as f64 {
            found += 1;
        }
    }
    ExonRecovery {
        total: exons.iter().filter(|e| !e.is_empty()).count(),
        found,
        min_coverage,
    }
}

/// Log₂-binned histogram of ungapped block lengths (Fig. 2).
///
/// Bin `i` counts blocks with length in `[2^i, 2^(i+1))`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockLengthHistogram {
    bins: Vec<u64>,
    total_blocks: u64,
    total_length: u64,
}

impl BlockLengthHistogram {
    /// Builds the histogram from the ungapped blocks of the top `k` chains
    /// (the paper uses the top-10 highest-scoring chains).
    pub fn from_chains(chains: &[Chain], alignments: &[Alignment], k: usize) -> Self {
        let mut hist = BlockLengthHistogram::default();
        for chain in chains.iter().take(k) {
            for &i in &chain.members {
                for len in alignments[i].cigar.ungapped_blocks() {
                    hist.add(len);
                }
            }
        }
        hist
    }

    /// Adds one block of the given length.
    pub fn add(&mut self, len: u64) {
        if len == 0 {
            return;
        }
        let bin = 63 - len.leading_zeros() as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.total_blocks += 1;
        self.total_length += len;
    }

    /// Counts per log₂ bin.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Mean block length — the "indels every N bp" statistic the paper
    /// quotes (641 bp for human–chimp, 31 bp for human–mouse).
    pub fn mean_length(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.total_length as f64 / self.total_blocks as f64
        }
    }

    /// Fraction of blocks shorter than `threshold` — the mass to the left
    /// of Fig. 2's red 30-bp line, i.e. the alignments ungapped filtering
    /// cannot see.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.total_blocks == 0 {
            return 0.0;
        }
        let mut below = 0u64;
        for (bin, &count) in self.bins.iter().enumerate() {
            let lo = 1u64 << bin;
            let hi = (1u64 << (bin + 1)).saturating_sub(1);
            if hi < threshold {
                below += count;
            } else if lo < threshold {
                // Partial bin: apportion uniformly.
                let span = hi - lo + 1;
                below += count * (threshold - lo) / span;
            }
        }
        below as f64 / self.total_blocks as f64
    }
}

/// False-positive rate: matched bases against a shuffled target divided by
/// matched bases against the real target (§VI-B).
pub fn false_positive_rate(matched_real: u64, matched_shuffled: u64) -> f64 {
    if matched_real == 0 {
        0.0
    } else {
        matched_shuffled as f64 / matched_real as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::Cigar;

    fn aln(t: usize, q: usize, runs: &[(AlignOp, u32)], score: i64) -> Alignment {
        let mut c = Cigar::new();
        for &(op, n) in runs {
            c.push(op, n);
        }
        Alignment::new(t, q, c, score)
    }

    fn chain_of(members: Vec<usize>, score: i64) -> Chain {
        Chain { members, score }
    }

    #[test]
    fn top_k() {
        let chains = vec![chain_of(vec![0], 5), chain_of(vec![1], 9), chain_of(vec![2], 7)];
        assert_eq!(top_k_scores(&chains, 2), vec![9, 7]);
        assert_eq!(top_k_total(&chains, 10), 21);
    }

    #[test]
    fn matched_bases_sums_members() {
        let alignments = vec![
            aln(0, 0, &[(AlignOp::Match, 10), (AlignOp::Subst, 5)], 0),
            aln(100, 100, &[(AlignOp::Match, 20)], 0),
        ];
        let chains = vec![chain_of(vec![0, 1], 0)];
        assert_eq!(matched_bases(&chains, &alignments), 30);
    }

    #[test]
    fn unique_matched_deduplicates_overlap() {
        let alignments = vec![
            aln(0, 0, &[(AlignOp::Match, 100)], 0),
            aln(50, 500, &[(AlignOp::Match, 100)], 0), // 50 bp overlap in target
        ];
        let chains = vec![chain_of(vec![0], 0), chain_of(vec![1], 0)];
        assert_eq!(matched_bases(&chains, &alignments), 200);
        assert_eq!(unique_matched_bases(&chains, &alignments), 150);
    }

    #[test]
    fn unique_matched_skips_substitutions() {
        let alignments = vec![aln(
            0,
            0,
            &[(AlignOp::Match, 10), (AlignOp::Subst, 5), (AlignOp::Match, 10)],
            0,
        )];
        let chains = vec![chain_of(vec![0], 0)];
        assert_eq!(unique_matched_bases(&chains, &alignments), 20);
    }

    #[test]
    fn aligned_intervals_split_on_gaps() {
        let a = aln(
            10,
            0,
            &[
                (AlignOp::Match, 5),
                (AlignOp::Delete, 3),
                (AlignOp::Match, 4),
                (AlignOp::Insert, 2),
                (AlignOp::Match, 1),
            ],
            0,
        );
        assert_eq!(
            aligned_target_intervals(&a),
            vec![(10, 15), (18, 22), (22, 23)]
        );
    }

    #[test]
    fn exon_recovery_counts_covered() {
        let alignments = vec![aln(100, 0, &[(AlignOp::Match, 100)], 0)];
        let chains = vec![chain_of(vec![0], 0)];
        let exons = vec![
            Interval::new(120, 160, "in"),       // fully covered
            Interval::new(190, 230, "half"),     // 25% covered
            Interval::new(500, 540, "out"),      // untouched
        ];
        let r = exon_recovery(&chains, &alignments, &exons, 0.5);
        assert_eq!(r.total, 3);
        assert_eq!(r.found, 1);
        let r = exon_recovery(&chains, &alignments, &exons, 0.2);
        assert_eq!(r.found, 2);
        assert!((r.fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_mean() {
        let mut h = BlockLengthHistogram::default();
        h.add(1); // bin 0
        h.add(3); // bin 1
        h.add(64); // bin 6
        h.add(0); // ignored
        assert_eq!(h.total_blocks(), 3);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[6], 1);
        assert!((h.mean_length() - 68.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_threshold() {
        let mut h = BlockLengthHistogram::default();
        for _ in 0..10 {
            h.add(8); // all in bin 3 (8..15)
        }
        assert_eq!(h.fraction_below(16), 1.0);
        assert_eq!(h.fraction_below(1), 0.0);
        for _ in 0..10 {
            h.add(1024);
        }
        assert!((h.fraction_below(16) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fpr() {
        assert_eq!(false_positive_rate(0, 0), 0.0);
        assert!((false_positive_rate(1_000_000, 7) - 7e-6).abs() < 1e-12);
    }

    #[test]
    fn histogram_from_chains_takes_top_k() {
        let alignments = vec![
            aln(0, 0, &[(AlignOp::Match, 100)], 10),
            aln(500, 500, &[(AlignOp::Match, 7)], 5),
        ];
        let chains = vec![chain_of(vec![0], 10), chain_of(vec![1], 5)];
        let h = BlockLengthHistogram::from_chains(&chains, &alignments, 1);
        assert_eq!(h.total_blocks(), 1);
        assert!((h.mean_length() - 100.0).abs() < 1e-12);
    }
}
