//! Checkpoint journal for assembly-scale runs.
//!
//! Every chromosome pair of a genome-vs-genome run is an independent
//! LASTZ-style invocation (§V-B), so hours of completed work must not be
//! lost to one late crash. The journal is a JSON-lines file: a header
//! record binding the journal to the run's parameters, then one record
//! per *completed* chromosome pair (alignments, workload, timings,
//! outcome), each fsync'd before the pair is considered durable. On
//! resume, [`crate::genome_pipeline::align_assemblies_with`] replays the
//! journaled pairs and recomputes only the rest, producing a report
//! identical to an uninterrupted run.
//!
//! The encoding is a self-contained JSON subset (objects, arrays,
//! strings, integers) written and parsed by this module — the workspace
//! deliberately has no JSON dependency. Since format version 2 every
//! record carries a trailing CRC32C over its own bytes, so bit rot is
//! detected rather than silently decoded; version-1 journals (no CRC)
//! still decode. Damage is tolerated, not fatal: a torn final line
//! (crash mid-append) is dropped, a corrupt *interior* record is
//! skipped — its pair simply re-runs on resume — and both are counted
//! in [`JournalStats`]. Only a header mismatch (wrong format, wrong
//! parameter fingerprint) aborts the resume.

use crate::config::WgaParams;
use crate::error::{WgaError, WgaResult};
use crate::report::{
    BudgetKind, FunnelCounters, RunEvent, RunOutcome, StageKind, StageTimings, Strand, WgaAlignment,
};
use align::{AlignOp, Alignment, Cigar};
use hwsim::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Journal format marker.
const FORMAT: &str = "wga-journal";
/// Journal format version written to new headers (2 = CRC'd records).
const VERSION: i128 = 2;

/// CRC32C (Castagnoli) lookup table, built at compile time. The
/// reflected polynomial matches the SSE4.2 `crc32` instruction and the
/// iSCSI/ext4 convention, so journals are checkable with standard
/// tooling.
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
};

/// CRC32C (Castagnoli) of `bytes` — the per-record checksum appended to
/// every journal line since format version 2. Table-driven and
/// integer-only.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// What recovery found in an existing journal, surfaced at resume time
/// (and in the assembly report) so damage is visible without being
/// fatal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalStats {
    /// Pair records successfully recovered.
    pub records_recovered: u64,
    /// Interior records dropped for failing to parse or failing their
    /// CRC check; their pairs re-run on resume.
    pub corrupt_records_skipped: u64,
    /// Whether a torn final line (crash mid-append) was dropped.
    pub torn_tail_dropped: bool,
}

/// One completed chromosome pair as stored in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRecord {
    /// Target chromosome name.
    pub target_chrom: String,
    /// Query chromosome name.
    pub query_chrom: String,
    /// Completed or degraded (failed pairs are *not* journaled, so a
    /// resume retries them).
    pub outcome: RunOutcome,
    /// The pair's workload counters.
    pub workload: Workload,
    /// The pair's stage timings (microsecond granularity).
    pub timings: StageTimings,
    /// The pair's funnel counters. Records written before this field
    /// existed decode as all-zero counters.
    pub counters: FunnelCounters,
    /// The pair's alignments, best score first.
    pub alignments: Vec<WgaAlignment>,
}

/// Fingerprint of a parameter set, stored in the journal header so a
/// resume with different parameters is rejected instead of silently
/// mixing results. FNV-1a over the canonical debug rendering.
pub fn params_fingerprint(params: &WgaParams) -> String {
    let repr = format!("{params:?}");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in repr.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// An open checkpoint journal: the records recovered from disk plus an
/// append handle for new completions.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    recovered: HashMap<(String, String), PairRecord>,
    stats: JournalStats,
}

impl Journal {
    /// Opens (or creates) a journal at `path` for a run with the given
    /// parameter fingerprint, recovering previously completed pairs.
    ///
    /// Damaged records are tolerated: a torn final line (crash
    /// mid-append) is dropped, and a corrupt interior record — bad
    /// JSON or a CRC mismatch — is skipped so its pair re-runs. Both
    /// are counted in [`Journal::stats`] and pruned from the file so
    /// the damage does not accumulate across resumes.
    ///
    /// # Errors
    ///
    /// [`WgaError::Io`] on filesystem failure; [`WgaError::Checkpoint`]
    /// when the journal belongs to a run with different parameters or
    /// is not a wga journal at all.
    pub fn open(path: &Path, fingerprint: &str) -> WgaResult<Journal> {
        let display = path.display().to_string();
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(WgaError::io(&display, e)),
        };

        let mut recovered = HashMap::new();
        let mut stats = JournalStats::default();
        let mut needs_header = true;
        let mut rewrite: Option<String> = None;
        if let Some(text) = existing {
            let lines: Vec<&str> = text.lines().collect();
            let mut nonempty = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.trim().is_empty());
            if let Some((header_no, header)) = nonempty.next() {
                needs_header = false;
                check_header(header, fingerprint)
                    .map_err(|m| WgaError::checkpoint(&display, format!("line {}: {m}", header_no + 1)))?;
                let rest: Vec<(usize, &&str)> = nonempty.collect();
                let last_idx = rest.len().saturating_sub(1);
                let mut kept: Vec<&str> = vec![*header];
                let mut dropped_any = false;
                for (i, (line_no, line)) in rest.iter().enumerate() {
                    match decode_record(line) {
                        Ok(rec) => {
                            kept.push(**line);
                            recovered.insert(
                                (rec.target_chrom.clone(), rec.query_chrom.clone()),
                                rec,
                            );
                        }
                        // A torn final line is the signature of a crash
                        // mid-append: recover everything before it.
                        Err(_) if i == last_idx => {
                            stats.torn_tail_dropped = true;
                            dropped_any = true;
                        }
                        // A corrupt interior record is damage, not a
                        // crash artifact — skip it (the pair re-runs)
                        // and count it instead of aborting the resume.
                        Err(m) => {
                            eprintln!(
                                "[wga] warning: {display}: line {}: \
                                 skipping corrupt journal record ({m})",
                                line_no + 1
                            );
                            stats.corrupt_records_skipped += 1;
                            dropped_any = true;
                        }
                    }
                }
                // The file still contains the dropped bytes; appending
                // after a torn tail would corrupt the next record, so
                // shrink the journal back to its valid lines (in
                // original record order) before reopening for append.
                if dropped_any {
                    let mut content = String::with_capacity(text.len());
                    for line in kept {
                        content.push_str(line);
                        content.push('\n');
                    }
                    rewrite = Some(content);
                }
            }
        }
        stats.records_recovered = recovered.len() as u64;
        if let Some(content) = &rewrite {
            std::fs::write(path, content).map_err(|e| WgaError::io(&display, e))?;
        }

        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| WgaError::io(&display, e))?;
        if needs_header {
            let mut line = String::new();
            line.push_str("{\"format\":");
            push_str_json(&mut line, FORMAT);
            line.push_str(",\"version\":");
            line.push_str(&VERSION.to_string());
            line.push_str(",\"params_fingerprint\":");
            push_str_json(&mut line, fingerprint);
            line.push_str("}\n");
            file.write_all(line.as_bytes())
                .and_then(|()| file.sync_data())
                .map_err(|e| WgaError::io(&display, e))?;
        }

        Ok(Journal {
            path: path.to_path_buf(),
            file,
            recovered,
            stats,
        })
    }

    /// Number of pairs recovered from disk at open time.
    pub fn recovered_pairs(&self) -> usize {
        self.recovered.len()
    }

    /// What recovery found at open time: records kept, corrupt records
    /// skipped, torn tail dropped.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Removes and returns the recovered record for one chromosome pair,
    /// if the journal has it.
    pub fn take(&mut self, target_chrom: &str, query_chrom: &str) -> Option<PairRecord> {
        self.recovered
            .remove(&(target_chrom.to_string(), query_chrom.to_string()))
    }

    /// Appends one completed pair and syncs it to disk before returning,
    /// so a crash after `append` never loses the pair.
    ///
    /// # Errors
    ///
    /// [`WgaError::Io`] when the write or fsync fails.
    pub fn append(&mut self, record: &PairRecord) -> WgaResult<()> {
        let line = encode_record(record);
        let display = self.path.display().to_string();
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| WgaError::io(display, e))
    }
}

fn check_header(line: &str, fingerprint: &str) -> Result<(), String> {
    let value = json::parse(line)?;
    match value.get("format").and_then(json::Json::as_str) {
        Some(FORMAT) => {}
        _ => return Err("not a wga journal".into()),
    }
    match value.get("version").and_then(json::Json::as_int) {
        // Version 1 journals predate per-record CRCs; their records
        // simply skip the CRC check.
        Some(1 | VERSION) => {}
        Some(v) => return Err(format!("unsupported journal version {v}")),
        None => return Err("missing journal version".into()),
    }
    match value.get("params_fingerprint").and_then(json::Json::as_str) {
        Some(f) if f == fingerprint => Ok(()),
        Some(_) => Err(
            "journal was written with different parameters; delete it or rerun with the \
             original configuration"
                .into(),
        ),
        None => Err("missing parameter fingerprint".into()),
    }
}

// --- Encoding -----------------------------------------------------------

fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field(out: &mut String, key: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str_json(out, key);
    out.push(':');
}

fn encode_workload(out: &mut String, w: &Workload) {
    out.push_str(&format!(
        "{{\"seeds\":{},\"filter_tiles\":{},\"extension_tiles\":{},\"extension_cells\":{},\"extension_rows\":{}}}",
        w.seeds, w.filter_tiles, w.extension_tiles, w.extension_cells, w.extension_rows
    ));
}

fn encode_timings(out: &mut String, t: &StageTimings) {
    out.push_str(&format!(
        "{{\"seeding\":{},\"filtering\":{},\"extension\":{}}}",
        t.seeding.as_micros(),
        t.filtering.as_micros(),
        t.extension.as_micros()
    ));
}

fn encode_counters(out: &mut String, c: &FunnelCounters) {
    out.push_str(&format!(
        "{{\"raw_seed_hits\":{},\"hits_filtered\":{},\"filter_cells\":{},\"anchors_passed\":{},\"anchors_absorbed\":{},\"alignments_kept\":{},\"faults_injected\":{},\"retries\":{},\"stalls_detected\":{},\"spec_discard\":{}}}",
        c.raw_seed_hits, c.hits_filtered, c.filter_cells, c.anchors_passed, c.anchors_absorbed, c.alignments_kept,
        c.faults_injected, c.retries, c.stalls_detected, c.spec_discard
    ));
}

fn budget_kind_name(kind: BudgetKind) -> &'static str {
    match kind {
        BudgetKind::SeedHits => "seed_hits",
        BudgetKind::FilterTiles => "filter_tiles",
        BudgetKind::ExtensionCells => "extension_cells",
        BudgetKind::Deadline => "deadline",
    }
}

fn stage_kind_name(stage: StageKind) -> &'static str {
    match stage {
        StageKind::Seeding => "seeding",
        StageKind::Filtering => "filtering",
        StageKind::Extension => "extension",
    }
}

fn encode_event(out: &mut String, event: &RunEvent) {
    match event {
        RunEvent::BudgetExceeded {
            budget,
            stage,
            limit,
            observed,
        } => {
            out.push_str(&format!(
                "{{\"type\":\"budget\",\"budget\":\"{}\",\"stage\":\"{}\",\"limit\":{limit},\"observed\":{observed}}}",
                budget_kind_name(*budget),
                stage_kind_name(*stage)
            ));
        }
        RunEvent::BatchFailed {
            stage,
            batch,
            items,
            message,
        } => {
            out.push_str(&format!(
                "{{\"type\":\"batch_failed\",\"stage\":\"{}\",\"batch\":{batch},\"items\":{items},\"message\":",
                stage_kind_name(*stage)
            ));
            push_str_json(out, message);
            out.push('}');
        }
    }
}

fn encode_outcome(out: &mut String, outcome: &RunOutcome) {
    match outcome {
        RunOutcome::Completed => out.push_str("{\"status\":\"completed\"}"),
        RunOutcome::Degraded { events } => {
            out.push_str("{\"status\":\"degraded\",\"events\":[");
            for (i, event) in events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_event(out, event);
            }
            out.push_str("]}");
        }
        RunOutcome::Failed { error } => {
            out.push_str("{\"status\":\"failed\",\"error\":");
            push_str_json(out, error);
            out.push('}');
        }
    }
}

fn encode_alignment(out: &mut String, wa: &WgaAlignment) {
    let a = &wa.alignment;
    out.push_str(&format!(
        "{{\"t\":{},\"q\":{},\"score\":{},\"strand\":\"{}\",\"cigar\":",
        a.target_start,
        a.query_start,
        a.score,
        match wa.strand {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    ));
    push_str_json(out, &a.cigar.to_string());
    out.push('}');
}

fn encode_record(record: &PairRecord) -> String {
    let mut out = String::with_capacity(256 + record.alignments.len() * 48);
    out.push('{');
    let mut first = true;
    push_field(&mut out, "target_chrom", &mut first);
    push_str_json(&mut out, &record.target_chrom);
    push_field(&mut out, "query_chrom", &mut first);
    push_str_json(&mut out, &record.query_chrom);
    push_field(&mut out, "outcome", &mut first);
    encode_outcome(&mut out, &record.outcome);
    push_field(&mut out, "workload", &mut first);
    encode_workload(&mut out, &record.workload);
    push_field(&mut out, "timings_us", &mut first);
    encode_timings(&mut out, &record.timings);
    push_field(&mut out, "counters", &mut first);
    encode_counters(&mut out, &record.counters);
    push_field(&mut out, "alignments", &mut first);
    out.push('[');
    for (i, wa) in record.alignments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_alignment(&mut out, wa);
    }
    out.push(']');
    out.push('}');
    // Self-checksum: CRC32C over the record *without* the crc field,
    // appended as the final member. decode strips the suffix, restores
    // the '}' and recomputes.
    let crc = crc32c(out.as_bytes());
    out.pop();
    out.push_str(&format!(",\"crc\":{crc}}}\n"));
    out
}

// --- Decoding -----------------------------------------------------------

fn field<'j>(obj: &'j json::Json, key: &str) -> Result<&'j json::Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(obj: &json::Json, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn u64_field(obj: &json::Json, key: &str) -> Result<u64, String> {
    let n = field(obj, key)?
        .as_int()
        .ok_or_else(|| format!("field {key:?} is not an integer"))?;
    u64::try_from(n).map_err(|_| format!("field {key:?} out of range"))
}

fn i64_field(obj: &json::Json, key: &str) -> Result<i64, String> {
    let n = field(obj, key)?
        .as_int()
        .ok_or_else(|| format!("field {key:?} is not an integer"))?;
    i64::try_from(n).map_err(|_| format!("field {key:?} out of range"))
}

fn decode_budget_kind(name: &str) -> Result<BudgetKind, String> {
    match name {
        "seed_hits" => Ok(BudgetKind::SeedHits),
        "filter_tiles" => Ok(BudgetKind::FilterTiles),
        "extension_cells" => Ok(BudgetKind::ExtensionCells),
        "deadline" => Ok(BudgetKind::Deadline),
        other => Err(format!("unknown budget kind {other:?}")),
    }
}

fn decode_stage_kind(name: &str) -> Result<StageKind, String> {
    match name {
        "seeding" => Ok(StageKind::Seeding),
        "filtering" => Ok(StageKind::Filtering),
        "extension" => Ok(StageKind::Extension),
        other => Err(format!("unknown stage kind {other:?}")),
    }
}

fn decode_event(value: &json::Json) -> Result<RunEvent, String> {
    match str_field(value, "type")?.as_str() {
        "budget" => Ok(RunEvent::BudgetExceeded {
            budget: decode_budget_kind(&str_field(value, "budget")?)?,
            stage: decode_stage_kind(&str_field(value, "stage")?)?,
            limit: u64_field(value, "limit")?,
            observed: u64_field(value, "observed")?,
        }),
        "batch_failed" => Ok(RunEvent::BatchFailed {
            stage: decode_stage_kind(&str_field(value, "stage")?)?,
            batch: u64_field(value, "batch")? as usize,
            items: u64_field(value, "items")?,
            message: str_field(value, "message")?,
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

fn decode_outcome(value: &json::Json) -> Result<RunOutcome, String> {
    match str_field(value, "status")?.as_str() {
        "completed" => Ok(RunOutcome::Completed),
        "degraded" => {
            let events = field(value, "events")?
                .as_arr()
                .ok_or("events is not an array")?
                .iter()
                .map(decode_event)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RunOutcome::Degraded { events })
        }
        "failed" => Ok(RunOutcome::Failed {
            error: str_field(value, "error")?,
        }),
        other => Err(format!("unknown outcome status {other:?}")),
    }
}

fn decode_cigar(text: &str) -> Result<Cigar, String> {
    let mut cigar = Cigar::new();
    if text == "*" {
        return Ok(cigar);
    }
    let mut count: u64 = 0;
    let mut saw_digit = false;
    for c in text.chars() {
        match c {
            '0'..='9' => {
                saw_digit = true;
                count = count * 10 + (c as u64 - '0' as u64);
                if count > u32::MAX as u64 {
                    return Err("cigar run length out of range".into());
                }
            }
            '=' | 'X' | 'I' | 'D' => {
                if !saw_digit {
                    return Err(format!("cigar op {c:?} without a run length"));
                }
                let op = match c {
                    '=' => AlignOp::Match,
                    'X' => AlignOp::Subst,
                    'I' => AlignOp::Insert,
                    _ => AlignOp::Delete,
                };
                cigar.push(op, count as u32);
                count = 0;
                saw_digit = false;
            }
            other => return Err(format!("unexpected cigar character {other:?}")),
        }
    }
    if saw_digit {
        return Err("cigar ends mid-run".into());
    }
    Ok(cigar)
}

fn decode_alignment(value: &json::Json) -> Result<WgaAlignment, String> {
    let target_start = u64_field(value, "t")? as usize;
    let query_start = u64_field(value, "q")? as usize;
    let score = i64_field(value, "score")?;
    let strand = match str_field(value, "strand")?.as_str() {
        "+" => Strand::Forward,
        "-" => Strand::Reverse,
        other => return Err(format!("unknown strand {other:?}")),
    };
    let cigar = decode_cigar(&str_field(value, "cigar")?)?;
    Ok(WgaAlignment {
        alignment: Alignment::new(target_start, query_start, cigar, score),
        strand,
    })
}

fn decode_workload(value: &json::Json) -> Result<Workload, String> {
    Ok(Workload {
        seeds: u64_field(value, "seeds")?,
        filter_tiles: u64_field(value, "filter_tiles")?,
        extension_tiles: u64_field(value, "extension_tiles")?,
        extension_cells: u64_field(value, "extension_cells")?,
        extension_rows: u64_field(value, "extension_rows")?,
    })
}

/// Decodes the funnel counters. Tolerant on two axes so old journals
/// stay readable: a missing `counters` object (records predating the
/// field) and missing individual keys (counters added later) both decode
/// as zero.
fn decode_counters(value: Option<&json::Json>) -> Result<FunnelCounters, String> {
    let Some(value) = value else {
        return Ok(FunnelCounters::default());
    };
    let opt = |key: &str| -> Result<u64, String> {
        match value.get(key) {
            None => Ok(0),
            Some(v) => {
                let n = v
                    .as_int()
                    .ok_or_else(|| format!("field {key:?} is not an integer"))?;
                u64::try_from(n).map_err(|_| format!("field {key:?} out of range"))
            }
        }
    };
    Ok(FunnelCounters {
        raw_seed_hits: opt("raw_seed_hits")?,
        hits_filtered: opt("hits_filtered")?,
        filter_cells: opt("filter_cells")?,
        anchors_passed: opt("anchors_passed")?,
        anchors_absorbed: opt("anchors_absorbed")?,
        alignments_kept: opt("alignments_kept")?,
        faults_injected: opt("faults_injected")?,
        retries: opt("retries")?,
        stalls_detected: opt("stalls_detected")?,
        spec_discard: opt("spec_discard")?,
    })
}

fn decode_timings(value: &json::Json) -> Result<StageTimings, String> {
    Ok(StageTimings {
        seeding: Duration::from_micros(u64_field(value, "seeding")?),
        filtering: Duration::from_micros(u64_field(value, "filtering")?),
        extension: Duration::from_micros(u64_field(value, "extension")?),
    })
}

/// Checks the trailing `,"crc":N` self-checksum of an encoded record
/// line. `expected` is the parsed crc field value; the checksum covers
/// the record with that trailing field stripped and the closing brace
/// restored.
fn verify_crc(line: &str, expected: u32) -> Result<(), String> {
    let idx = line
        .rfind(",\"crc\":")
        .ok_or("crc field present but not trailing")?;
    let mut body = String::with_capacity(idx + 1);
    body.push_str(&line[..idx]);
    body.push('}');
    let actual = crc32c(body.as_bytes());
    if actual == expected {
        Ok(())
    } else {
        Err(format!("crc mismatch (stored {expected}, computed {actual})"))
    }
}

fn decode_record(line: &str) -> Result<PairRecord, String> {
    let value = json::parse(line)?;
    // Version-2 records carry a CRC; version-1 records (no crc field)
    // are accepted unchecked.
    if let Some(crc) = value.get("crc") {
        let expected = crc
            .as_int()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or("crc field is not a u32")?;
        verify_crc(line, expected)?;
    }
    let alignments = field(&value, "alignments")?
        .as_arr()
        .ok_or("alignments is not an array")?
        .iter()
        .map(decode_alignment)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PairRecord {
        target_chrom: str_field(&value, "target_chrom")?,
        query_chrom: str_field(&value, "query_chrom")?,
        outcome: decode_outcome(field(&value, "outcome")?)?,
        workload: decode_workload(field(&value, "workload")?)?,
        timings: decode_timings(field(&value, "timings_us")?)?,
        counters: decode_counters(value.get("counters"))?,
        alignments,
    })
}

// --- Minimal JSON subset ------------------------------------------------

/// Minimal dependency-free JSON subset used by the journal and by tools
/// that validate this workspace's JSON artefacts (e.g. the
/// `filter_throughput` bench's `BENCH_filter.json` schema check).
///
/// Supports objects, arrays, strings, integers, booleans and `null` —
/// no floats, which every JSON producer in this workspace avoids.
pub mod json {
    /// A parsed JSON value. Numbers are integers only — the journal never
    /// writes floats.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Integer (the journal emits no floats).
        Int(i128),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object, in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object member lookup.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an integer.
        pub fn as_int(&self) -> Option<i128> {
            match self {
                Json::Int(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'t> {
        bytes: &'t [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, byte: u8) -> Result<(), String> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}",
                    byte as char, self.pos
                ))
            }
        }

        fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b'n') => self.literal("null", Json::Null),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'-') | Some(b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected value at byte {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut members = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                members.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        }

        fn hex4(&mut self) -> Result<u32, String> {
            let mut value = 0u32;
            for _ in 0..4 {
                let b = self
                    .peek()
                    .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
                let digit = (b as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                value = value * 16 + digit;
                self.pos += 1;
            }
            Ok(value)
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                // Consume a run of plain bytes in one go.
                while self
                    .peek()
                    .is_some_and(|b| b != b'"' && b != b'\\')
                {
                    self.pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 near byte {start}"))?,
                );
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let escape = self
                            .peek()
                            .ok_or_else(|| format!("truncated escape at byte {}", self.pos))?;
                        self.pos += 1;
                        match escape {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hi = self.hex4()?;
                                let code = if (0xd800..0xdc00).contains(&hi) {
                                    // Surrogate pair: expect \uXXXX low half.
                                    self.expect(b'\\')?;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err("unpaired surrogate".into());
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    hi
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or("bad \\u escape codepoint")?,
                                );
                            }
                            other => {
                                return Err(format!("unknown escape \\{}", other as char));
                            }
                        }
                    }
                    None => return Err("unterminated string".into()),
                    // The scan loop above stops only on `"`, `\` or
                    // end-of-input, but a corrupt journal deserves an
                    // error, not a crash.
                    Some(other) => {
                        return Err(format!(
                            "unexpected byte {:#04x} in string at byte {}",
                            other, self.pos
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> PairRecord {
        let mut cigar = Cigar::new();
        cigar.push(AlignOp::Match, 20);
        cigar.push(AlignOp::Insert, 2);
        cigar.push(AlignOp::Subst, 1);
        PairRecord {
            target_chrom: "chr\"I\\".into(),
            query_chrom: "chr1".into(),
            outcome: RunOutcome::Degraded {
                events: vec![
                    RunEvent::BudgetExceeded {
                        budget: BudgetKind::FilterTiles,
                        stage: StageKind::Filtering,
                        limit: 100,
                        observed: 250,
                    },
                    RunEvent::BatchFailed {
                        stage: StageKind::Filtering,
                        batch: 3,
                        items: 7,
                        message: "panicked at\nline".into(),
                    },
                ],
            },
            workload: Workload {
                seeds: 10,
                filter_tiles: 20,
                extension_tiles: 3,
                extension_cells: 4000,
                extension_rows: 40,
            },
            timings: StageTimings {
                seeding: Duration::from_micros(1500),
                filtering: Duration::from_micros(2500),
                extension: Duration::from_micros(3500),
            },
            counters: FunnelCounters {
                raw_seed_hits: 25,
                hits_filtered: 20,
                filter_cells: 6400,
                anchors_passed: 3,
                anchors_absorbed: 1,
                alignments_kept: 1,
                faults_injected: 1,
                retries: 1,
                stalls_detected: 0,
                spec_discard: 2,
            },
            alignments: vec![WgaAlignment {
                alignment: Alignment::new(5, 9, cigar, 1234),
                strand: Strand::Reverse,
            }],
        }
    }

    #[test]
    fn record_round_trips() {
        let record = sample_record();
        let line = encode_record(&record);
        assert!(line.ends_with('\n'));
        let parsed = decode_record(line.trim_end()).unwrap();
        assert_eq!(parsed, record);
    }

    /// Reverts an encoded line to its version-1 form: no crc field.
    fn strip_crc(line: &str) -> String {
        let trimmed = line.trim_end();
        let idx = trimmed.rfind(",\"crc\":").expect("encoded line has a crc");
        format!("{}}}", &trimmed[..idx])
    }

    #[test]
    fn record_without_counters_decodes_as_zero() {
        // A version-1 journal line written before the counters field
        // (or the crc) existed.
        let record = sample_record();
        let line = strip_crc(&encode_record(&record));
        let counters_json = {
            let mut buf = String::new();
            encode_counters(&mut buf, &record.counters);
            buf
        };
        let legacy = line.replace(&format!(",\"counters\":{counters_json}"), "");
        assert_ne!(legacy, line, "counters field should have been stripped");
        let parsed = decode_record(legacy.trim_end()).unwrap();
        assert_eq!(parsed.counters, FunnelCounters::default());
        assert_eq!(parsed.workload, record.workload);
        assert_eq!(parsed.alignments, record.alignments);
    }

    #[test]
    fn record_without_crc_decodes_unchecked() {
        // Version-1 records have no crc member and must decode as-is.
        let record = sample_record();
        let legacy = strip_crc(&encode_record(&record));
        assert_eq!(decode_record(&legacy).unwrap(), record);
    }

    #[test]
    fn crc32c_matches_reference_vector() {
        // The canonical CRC32C check value (iSCSI, RFC 3720).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn flipped_byte_fails_the_crc() {
        let line = encode_record(&sample_record());
        let trimmed = line.trim_end();
        assert!(decode_record(trimmed).is_ok());
        // Flip one digit of the score: still valid JSON, so only the
        // checksum can catch it.
        let tampered = trimmed.replace("\"score\":1234", "\"score\":1235");
        assert_ne!(tampered, trimmed);
        let err = decode_record(&tampered).unwrap_err();
        assert!(err.contains("crc mismatch"), "{err}");
    }

    #[test]
    fn cigar_round_trips_and_rejects_garbage() {
        for text in ["*", "10=", "3=2I1X4D"] {
            let cigar = decode_cigar(text).unwrap();
            let rendered = cigar.to_string();
            assert_eq!(rendered, text);
        }
        assert!(decode_cigar("10").is_err());
        assert!(decode_cigar("=").is_err());
        assert!(decode_cigar("3M").is_err()); // only extended ops
    }

    #[test]
    fn journal_resume_recovers_completed_pairs() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wga-journal-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let params = WgaParams::darwin_wga();
        let fp = params_fingerprint(&params);
        {
            let mut journal = Journal::open(&path, &fp).unwrap();
            assert_eq!(journal.recovered_pairs(), 0);
            journal.append(&sample_record()).unwrap();
        }
        // Simulate a torn final line from a crash mid-append.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"target_chrom\":\"chrII\",\"query_ch").unwrap();
        }
        let mut journal = Journal::open(&path, &fp).unwrap();
        assert_eq!(journal.recovered_pairs(), 1);
        let rec = journal.take("chr\"I\\", "chr1").unwrap();
        assert_eq!(rec, sample_record());
        assert!(journal.take("chr\"I\\", "chr1").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_rejects_foreign_fingerprint() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wga-journal-fp-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fp_a = params_fingerprint(&WgaParams::darwin_wga());
        let fp_b = params_fingerprint(&WgaParams::lastz_baseline());
        assert_ne!(fp_a, fp_b);
        drop(Journal::open(&path, &fp_a).unwrap());
        let err = Journal::open(&path, &fp_b).unwrap_err();
        assert!(matches!(err, WgaError::Checkpoint { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_record_is_skipped_and_counted() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wga-journal-corrupt-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fp = params_fingerprint(&WgaParams::darwin_wga());
        {
            let mut journal = Journal::open(&path, &fp).unwrap();
            journal.append(&sample_record()).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            // A corrupt line *followed by* a valid line is interior
            // corruption, not a torn tail.
            f.write_all(b"{garbage\n").unwrap();
            let mut rec = sample_record();
            rec.target_chrom = "chrII".into();
            f.write_all(encode_record(&rec).as_bytes()).unwrap();
        }
        let journal = Journal::open(&path, &fp).unwrap();
        assert_eq!(journal.recovered_pairs(), 2, "both valid records survive");
        let stats = journal.stats();
        assert_eq!(stats.records_recovered, 2);
        assert_eq!(stats.corrupt_records_skipped, 1);
        assert!(!stats.torn_tail_dropped);
        drop(journal);
        // The corrupt line was pruned on open, so a second resume is
        // clean.
        let journal = Journal::open(&path, &fp).unwrap();
        assert_eq!(journal.stats().corrupt_records_skipped, 0);
        assert_eq!(journal.recovered_pairs(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_rotted_interior_record_reruns_its_pair() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wga-journal-bitrot-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fp = params_fingerprint(&WgaParams::darwin_wga());
        {
            let mut journal = Journal::open(&path, &fp).unwrap();
            journal.append(&sample_record()).unwrap();
            let mut rec = sample_record();
            rec.target_chrom = "chrII".into();
            journal.append(&rec).unwrap();
        }
        // Flip bytes mid-file: turn the first record's score into a
        // different (still valid) number. Only the CRC can notice.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"score\":1234", "\"score\":9999", 1);
        assert_ne!(tampered, text);
        std::fs::write(&path, tampered).unwrap();

        let mut journal = Journal::open(&path, &fp).unwrap();
        assert_eq!(journal.stats().corrupt_records_skipped, 1);
        assert!(
            journal.take("chr\"I\\", "chr1").is_none(),
            "the damaged pair must re-run, not resume"
        );
        assert!(journal.take("chrII", "chr1").is_some(), "undamaged pair resumes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_parser_handles_escapes_and_rejects_trailing() {
        let v = json::parse(r#"{"a":"xA\n\"","b":[1,-2],"c":null}"#).unwrap();
        assert_eq!(v.get("a").and_then(json::Json::as_str), Some("xA\n\""));
        let arr = v.get("b").and_then(json::Json::as_arr).unwrap();
        assert_eq!(arr[1].as_int(), Some(-2));
        assert!(json::parse("{} trailing").is_err());
        assert!(json::parse(r#"{"a":}"#).is_err());
    }
}
