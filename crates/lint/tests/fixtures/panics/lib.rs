//! Panics fixture: exactly FIVE non-waived panic sites in live code.
//!
//! Decoys that must NOT count: doc examples, strings, comments, raw
//! strings, char literals, `#[cfg(test)]` code (including a mid-file
//! test module), `unwrap_or`, and one waived site.

/// Doc example decoy:
///
/// ```
/// let x = Some(1).unwrap(); // not code, panic! here is prose
/// ```
pub fn live_one(x: Option<u32>) -> u32 {
    x.unwrap() // site 1
}

pub fn live_two(x: Option<u32>) -> u32 {
    let s = "a string .unwrap() panic! decoy";
    let r = r#"raw string with "quotes" and .expect( decoy"#;
    let c = '"'; // char decoy; the next slash pair is data: '/'
    /* block comment decoy: .unwrap()
       /* nested: panic!("still a comment") */
    */
    let _ = (s, r, c);
    x.expect("fixture") // site 2
}

#[cfg(test)]
mod mid_file_tests {
    // Everything here is test code: none of these count.
    fn t() {
        let v: Option<u32> = None;
        v.unwrap();
        v.expect("boom");
        panic!("test only");
    }
}

pub fn live_three(mode: u8) -> u8 {
    match mode {
        0 => panic!("fixture"),   // site 3
        1 => unreachable!(),      // site 4
        2 => todo!(),             // site 5
        _ => mode,
    }
}

pub fn waived(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(panics): fixture waiver — counted as waived, not violating
}

pub fn not_a_panic(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
