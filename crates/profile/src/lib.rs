//! Trace analysis for `wga --trace-out` artifacts (`wga profile`).
//!
//! PR 4's observability layer writes spans, funnel counters and log2
//! histograms as JSONL; this crate is the consumer that turns those
//! bytes into decisions:
//!
//! * [`trace`] — a streaming, schema-validated JSONL reader
//!   ([`TraceFile`]) that reconstructs the per-pair, per-stage span
//!   timeline. Headerless traces parse as schema 1; traces tagged with
//!   a higher major than [`wga_core::obs::TRACE_SCHEMA`] are rejected.
//! * [`analyze`] — per-stage attribution (busy vs queue-wait vs idle
//!   per worker), a critical-path estimate through the
//!   seed → filter → extend chain of every pair, top-K slowest
//!   batches/tiles, and speculation/fault rollups.
//! * [`drift`] — the modeled-vs-measured engine: replays the workload
//!   shape extracted from the trace through hwsim's cycle models
//!   ([`hwsim::perf::replay_trace_workload`]) and scores the gap
//!   against the `hwsim.bsw`/`hwsim.gactx` spans the run recorded, in
//!   integer centi-percent. Deterministic given a trace — the CI drift
//!   gate's signal.
//! * [`report`] — [`ProfileReport`]: a deterministic, integer-only
//!   JSON artifact (`profile_report.json`) plus a human table.
//! * [`diff`] — per-stage regression thresholds between two reports
//!   (`wga profile diff old.json new.json`).
//!
//! Everything in this crate is integer arithmetic over data already in
//! the trace: no wall clocks, no floats, no hash-order iteration — the
//! same determinism discipline `wga-lint` enforces on the pipeline's
//! canonical surface, so one trace always produces one byte-exact
//! report.

pub mod analyze;
pub mod diff;
pub mod drift;
pub mod report;
pub mod trace;

pub use analyze::Attribution;
pub use diff::{DiffOutcome, Thresholds};
pub use drift::Drift;
pub use report::ProfileReport;
pub use trace::{SpanRec, TraceFile};

/// Error type for trace parsing and report handling: a message plus
/// the (1-based) trace line it arose on, when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError {
    /// What went wrong.
    pub msg: String,
    /// 1-based JSONL line number, 0 when not line-specific.
    pub line: usize,
}

impl ProfileError {
    /// An error tied to a trace line.
    pub fn at(line: usize, msg: impl Into<String>) -> ProfileError {
        ProfileError {
            msg: msg.into(),
            line,
        }
    }

    /// An error not tied to any line.
    pub fn msg(msg: impl Into<String>) -> ProfileError {
        ProfileError {
            msg: msg.into(),
            line: 0,
        }
    }
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for ProfileError {}
