//! End-to-end rule tests over the fixture crates in
//! `tests/fixtures/`, plus the self-test that the real workspace is
//! clean under the checked-in manifest.
//!
//! Every fixture seeds a known number of violations; each must be
//! detected by exactly its intended rule (ISSUE 5 acceptance).

use std::path::PathBuf;

use wga_lint::{run, Analysis, Config, SiteStatus, RULES};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn analyze(manifest: &str, rules: &[&'static str]) -> Analysis {
    let cfg = Config::parse(fixture_root(), manifest).expect("fixture manifest parses");
    run(&cfg, rules).expect("fixture run succeeds")
}

fn violations(a: &Analysis) -> Vec<&wga_lint::Site> {
    a.sites
        .iter()
        .filter(|s| s.status == SiteStatus::Violation)
        .collect()
}

#[test]
fn panics_fixture_exact_counts() {
    let a = analyze("[scan]\npanics\n", &["panics"]);
    let s = a.stats("panics");
    assert_eq!(s.found, 6, "5 live + 1 waived: {:#?}", a.sites);
    assert_eq!(s.waived, 1);
    assert_eq!(s.baselined, 0);
    assert_eq!(s.violations, 5);
    assert!(a.sites.iter().all(|s| s.rule == "panics"));
    // The five seeded kinds are each present.
    let msgs: Vec<&str> = violations(&a).iter().map(|s| s.msg.as_str()).collect();
    for kind in [".unwrap()", ".expect()", "panic!", "unreachable!", "todo!"] {
        assert!(
            msgs.iter().any(|m| m.starts_with(kind)),
            "missing {kind} in {msgs:?}"
        );
    }
}

#[test]
fn panics_baseline_absorbs_known_sites() {
    let a = analyze(
        "[scan]\npanics\n[baseline panics]\npanics 5\n",
        &["panics"],
    );
    let s = a.stats("panics");
    assert_eq!(s.violations, 0);
    assert_eq!(s.baselined, 5);
    assert_eq!(s.waived, 1);
    assert_eq!(a.baseline_dirs, vec![("panics".to_string(), 5, 5)]);
}

#[test]
fn panics_over_baseline_reports_every_site() {
    let a = analyze(
        "[scan]\npanics\n[baseline panics]\npanics 4\n",
        &["panics"],
    );
    let s = a.stats("panics");
    assert_eq!(s.violations, 5, "over baseline, every site is reported");
    assert!(violations(&a)
        .iter()
        .all(|v| v.msg.contains("5 found > 4 allowed")));
}

#[test]
fn panics_forbidden_ignores_baseline() {
    let a = analyze(
        "[scan]\npanics\n[panics-forbidden]\npanics\n[baseline panics]\npanics 99\n",
        &["panics"],
    );
    let s = a.stats("panics");
    assert_eq!(s.violations, 5);
    assert!(violations(&a)
        .iter()
        .all(|v| v.msg.contains("panic-forbidden")));
}

#[test]
fn determinism_fixture_exact_counts() {
    let a = analyze(
        "[scan]\ndeterminism\n[determinism]\ndeterminism/canonical.rs\n",
        &["determinism"],
    );
    let s = a.stats("determinism");
    assert_eq!(s.found, 7, "{:#?}", a.sites);
    assert_eq!(s.waived, 2);
    assert_eq!(s.violations, 5);
    let msgs: Vec<&str> = violations(&a).iter().map(|s| s.msg.as_str()).collect();
    assert_eq!(
        msgs.iter().filter(|m| m.starts_with("hash iteration")).count(),
        2,
        "{msgs:?}"
    );
    assert_eq!(msgs.iter().filter(|m| m.starts_with("wall clock")).count(), 1);
    assert_eq!(msgs.iter().filter(|m| m.starts_with("float literal")).count(), 1);
    assert_eq!(msgs.iter().filter(|m| m.starts_with("float type")).count(), 1);
}

#[test]
fn determinism_only_runs_on_manifest_modules() {
    // Same scan dir, but the module is not in [determinism]: no sites.
    let a = analyze("[scan]\ndeterminism\n", &["determinism"]);
    assert_eq!(a.stats("determinism").found, 0);
}

#[test]
fn deadlock_clean_chain_is_acyclic() {
    let a = analyze("[scan]\ndeadlock_ok\n[deadlock]\ndeadlock_ok\n", &["deadlock"]);
    assert_eq!(a.queues, 3);
    assert_eq!(a.edges, 2);
    assert_eq!(a.cycles, 0);
    assert_eq!(a.total_violations(), 0, "{:#?}", a.sites);
}

#[test]
fn deadlock_cycle_through_helper_call_detected() {
    let a = analyze(
        "[scan]\ndeadlock_cycle\n[deadlock]\ndeadlock_cycle\n",
        &["deadlock"],
    );
    assert_eq!(a.cycles, 1, "{:#?}", a.sites);
    let v = violations(&a);
    assert_eq!(v.len(), 1);
    assert!(v[0].msg.contains("cycle"));
    assert!(v[0].msg.contains("work_q") && v[0].msg.contains("done_q"));
}

#[test]
fn deadlock_push_under_held_lock_detected() {
    let a = analyze(
        "[scan]\ndeadlock_lock\n[deadlock]\ndeadlock_lock\n",
        &["deadlock"],
    );
    assert_eq!(a.cycles, 0);
    let v = violations(&a);
    assert_eq!(v.len(), 1, "{:#?}", a.sites);
    assert!(v[0].msg.contains("lock guard `slot`"));
    assert_eq!(v[0].file, "deadlock_lock/exec.rs");
}

#[test]
fn hot_loop_fixture_exact_counts() {
    let a = analyze("[scan]\nhot\n", &["hot-loop"]);
    assert_eq!(a.hot_files, 1);
    let s = a.stats("hot-loop");
    assert_eq!(s.found, 4, "{:#?}", a.sites);
    assert_eq!(s.violations, 4);
    let msgs: Vec<&str> = violations(&a).iter().map(|s| s.msg.as_str()).collect();
    for kind in ["Vec::new", ".to_vec()", ".clone()", "format!"] {
        assert!(msgs.iter().any(|m| m.contains(kind)), "missing {kind}");
    }
}

#[test]
fn unsafe_fixture_exact_counts() {
    let a = analyze("[scan]\nunsafe_audit\n", &["unsafe"]);
    let s = a.stats("unsafe");
    assert_eq!(s.found, 2, "annotated block is clean: {:#?}", a.sites);
    assert_eq!(s.waived, 1);
    assert_eq!(s.violations, 1);
}

#[test]
fn each_seeded_violation_hits_exactly_its_intended_rule() {
    let manifest = "
[scan]
panics
determinism
deadlock_ok
deadlock_cycle
deadlock_lock
hot
unsafe_audit
[determinism]
determinism/canonical.rs
[deadlock]
deadlock_cycle
deadlock_lock
";
    let a = analyze(manifest, RULES);
    assert!(a.total_violations() > 0);
    for v in violations(&a) {
        let expected = match v.file.split('/').next().unwrap_or("") {
            "panics" => "panics",
            "determinism" => "determinism",
            "deadlock_cycle" | "deadlock_lock" => "deadlock",
            "hot" => "hot-loop",
            "unsafe_audit" => "unsafe",
            other => panic!("violation in unexpected fixture dir {other}: {v:?}"),
        };
        assert_eq!(
            v.rule, expected,
            "cross-rule contamination at {}:{} — {}",
            v.file, v.line, v.msg
        );
    }
    // And the clean fixture stays clean even in the combined run.
    assert!(violations(&a).iter().all(|v| !v.file.starts_with("deadlock_ok/")));
}

/// The real workspace must be green under the checked-in manifest —
/// the same invariant CI enforces, pinned as a test so `cargo test`
/// alone catches a regression.
#[test]
fn workspace_is_clean_under_checked_in_manifest() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let manifest_path = root.join("scripts/wga-lint.manifest");
    let text = std::fs::read_to_string(&manifest_path).expect("manifest readable");
    let cfg = Config::parse(root, &text).expect("manifest parses");
    let a = run(&cfg, RULES).expect("workspace lint runs");
    let v = violations(&a);
    assert!(
        v.is_empty(),
        "workspace has non-waived lint violations:\n{}",
        v.iter()
            .map(|s| format!("  {}:{} [{}] {}", s.file, s.line, s.rule, s.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The deadlock rule really parsed the dataflow: the three-queue
    // chain must be present and acyclic.
    assert_eq!(a.queues, 3);
    assert_eq!(a.edges, 2);
    assert_eq!(a.cycles, 0);
    // The two wavefront kernels carry their hot tags.
    assert_eq!(a.hot_files, 2);
}
