//! Spaced seed patterns (§III-B, Fig. 5).
//!
//! A spaced seed samples a window of the genome at its `1` positions; two
//! windows produce a "seed hit" when all sampled bases agree. The default
//! pattern in both LASTZ and Darwin-WGA is the 12-of-19 seed. Optionally a
//! single *transition* substitution (`A↔G`, `C↔T`) is tolerated at any one
//! match position, which multiplies the number of seed words looked up per
//! position by `(m + 1)` — the computation/sensitivity trade-off the paper
//! describes.

use genome::Base;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A spaced seed pattern: a string over `{'1', '0'}` where `1` positions
/// are sampled and `0` positions are don't-cares.
///
/// # Examples
///
/// ```
/// use seed::pattern::SeedPattern;
///
/// let p = SeedPattern::lastz_default();
/// assert_eq!(p.span(), 19);
/// assert_eq!(p.weight(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeedPattern {
    /// Offsets of the `1` positions within the span.
    sampled: Vec<usize>,
    span: usize,
}

impl SeedPattern {
    /// The default 12-of-19 seed used by LASTZ and Darwin-WGA
    /// (`1110100110010101111`).
    pub fn lastz_default() -> SeedPattern {
        const BITS: &str = "1110100110010101111";
        SeedPattern {
            sampled: BITS
                .bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'1')
                .map(|(i, _)| i)
                .collect(),
            span: BITS.len(),
        }
    }

    /// A contiguous k-mer seed (all positions sampled).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 31`.
    pub fn exact(k: usize) -> SeedPattern {
        assert!(k > 0 && k <= 31, "k must be in 1..=31");
        SeedPattern {
            sampled: (0..k).collect(),
            span: k,
        }
    }

    /// Window length the pattern covers.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Number of sampled (`1`) positions.
    pub fn weight(&self) -> usize {
        self.sampled.len()
    }

    /// Offsets of the sampled positions.
    pub fn sampled_offsets(&self) -> &[usize] {
        &self.sampled
    }

    /// Extracts the seed word from a window starting at `pos`.
    ///
    /// Returns `None` when the window overruns the sequence or any sampled
    /// base is `N` (ambiguous bases never seed).
    #[inline]
    pub fn extract(&self, seq: &[Base], pos: usize) -> Option<u64> {
        if pos + self.span > seq.len() {
            return None;
        }
        let mut word = 0u64;
        for &off in &self.sampled {
            let b = seq[pos + off];
            if b == Base::N {
                return None;
            }
            word = (word << 2) | b.code2() as u64;
        }
        Some(word)
    }

    /// Extracts the exact word plus every one-transition variant
    /// (Fig. 5b): `weight()` extra words where one sampled base is replaced
    /// by its transition partner. The exact word is always first.
    pub fn extract_with_transitions(&self, seq: &[Base], pos: usize) -> Vec<u64> {
        let Some(exact) = self.extract(seq, pos) else {
            return Vec::new();
        };
        let m = self.weight();
        let mut words = Vec::with_capacity(m + 1);
        words.push(exact);
        for k in 0..m {
            // Sampled position k occupies bits [2*(m-1-k), 2*(m-1-k)+1].
            let shift = 2 * (m - 1 - k);
            let code = ((exact >> shift) & 0b11) as u8;
            let partner = Base::from_code(code).transition_partner().code2() as u64;
            let variant = (exact & !(0b11u64 << shift)) | (partner << shift);
            words.push(variant);
        }
        words
    }

    /// Number of distinct seed words a query position produces
    /// (`1` without transitions, `weight() + 1` with).
    pub fn words_per_position(&self, transitions: bool) -> usize {
        if transitions {
            self.weight() + 1
        } else {
            1
        }
    }
}

impl FromStr for SeedPattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<SeedPattern, ParsePatternError> {
        if s.is_empty() {
            return Err(ParsePatternError::Empty);
        }
        let mut sampled = Vec::new();
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '1' => sampled.push(i),
                '0' => {}
                other => return Err(ParsePatternError::BadChar(other)),
            }
        }
        if sampled.is_empty() {
            return Err(ParsePatternError::NoSampledPositions);
        }
        if sampled.len() > 31 {
            return Err(ParsePatternError::TooHeavy(sampled.len()));
        }
        if !s.starts_with('1') || !s.ends_with('1') {
            return Err(ParsePatternError::UntrimmedEnds);
        }
        Ok(SeedPattern {
            sampled,
            span: s.len(),
        })
    }
}

impl fmt::Display for SeedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut chars = vec!['0'; self.span];
        for &off in &self.sampled {
            chars[off] = '1';
        }
        write!(f, "{}", chars.into_iter().collect::<String>())
    }
}

/// Error parsing a seed-pattern string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsePatternError {
    /// Empty pattern string.
    Empty,
    /// Character other than `0`/`1`.
    BadChar(char),
    /// No `1` positions at all.
    NoSampledPositions,
    /// More than 31 sampled positions (word would overflow `u64`).
    TooHeavy(usize),
    /// Pattern must start and end with `1`.
    UntrimmedEnds,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePatternError::Empty => write!(f, "empty seed pattern"),
            ParsePatternError::BadChar(c) => write!(f, "invalid pattern character {c:?}"),
            ParsePatternError::NoSampledPositions => write!(f, "pattern has no '1' positions"),
            ParsePatternError::TooHeavy(n) => write!(f, "pattern weight {n} exceeds 31"),
            ParsePatternError::UntrimmedEnds => {
                write!(f, "pattern must start and end with '1'")
            }
        }
    }
}

impl std::error::Error for ParsePatternError {}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Sequence;

    #[test]
    fn lastz_default_shape() {
        let p = SeedPattern::lastz_default();
        assert_eq!(p.span(), 19);
        assert_eq!(p.weight(), 12);
        assert_eq!(p.to_string(), "1110100110010101111");
    }

    #[test]
    fn parse_round_trip() {
        let p: SeedPattern = "1101".parse().unwrap();
        assert_eq!(p.to_string(), "1101");
        assert_eq!(p.sampled_offsets(), &[0, 1, 3]);
    }

    #[test]
    fn parse_errors() {
        assert_eq!("".parse::<SeedPattern>(), Err(ParsePatternError::Empty));
        assert_eq!(
            "1021".parse::<SeedPattern>(),
            Err(ParsePatternError::BadChar('2'))
        );
        assert_eq!(
            "0110".parse::<SeedPattern>(),
            Err(ParsePatternError::UntrimmedEnds)
        );
        assert_eq!(
            "0".parse::<SeedPattern>(),
            Err(ParsePatternError::NoSampledPositions)
        );
    }

    #[test]
    fn extract_ignores_dont_care_positions() {
        let p: SeedPattern = "101".parse().unwrap();
        let a: Sequence = "ACA".parse().unwrap();
        let b: Sequence = "ATA".parse().unwrap();
        assert_eq!(p.extract(a.as_slice(), 0), p.extract(b.as_slice(), 0));
        let c: Sequence = "TCA".parse().unwrap();
        assert_ne!(p.extract(a.as_slice(), 0), p.extract(c.as_slice(), 0));
    }

    #[test]
    fn extract_rejects_n_and_overruns() {
        let p = SeedPattern::exact(4);
        let s: Sequence = "ACGTNACGT".parse().unwrap();
        assert_eq!(p.extract(s.as_slice(), 1), None); // contains N
        assert_eq!(p.extract(s.as_slice(), 6), None); // overruns
        assert!(p.extract(s.as_slice(), 0).is_some());
        assert!(p.extract(s.as_slice(), 5).is_some());
    }

    #[test]
    fn transition_variants_count_and_match() {
        let p = SeedPattern::exact(4);
        let s: Sequence = "ACGT".parse().unwrap();
        let words = p.extract_with_transitions(s.as_slice(), 0);
        assert_eq!(words.len(), 5);
        // The transition variant at position 0 equals the word of "GCGT".
        let g: Sequence = "GCGT".parse().unwrap();
        assert_eq!(words[1], p.extract(g.as_slice(), 0).unwrap());
        // The variant at position 3 equals the word of "ACGC".
        let c: Sequence = "ACGC".parse().unwrap();
        assert_eq!(words[4], p.extract(c.as_slice(), 0).unwrap());
        // All variants are distinct from the exact word.
        for v in &words[1..] {
            assert_ne!(*v, words[0]);
        }
    }

    #[test]
    fn words_per_position() {
        let p = SeedPattern::lastz_default();
        assert_eq!(p.words_per_position(false), 1);
        assert_eq!(p.words_per_position(true), 13);
    }
}
