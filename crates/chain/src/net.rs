//! Chain netting — the UCSC "chainNet" role.
//!
//! After chaining, the UCSC pipeline selects a *net*: the highest-scoring
//! chains that tile the target without overlapping, so every target
//! position has at most one (best) aligning chain. The browser tracks in
//! the paper's Figs. 3 and 9 display exactly such nets. Netting is also
//! the cleanest way to get inflation-proof genome-coverage numbers out of
//! a chain set.

use crate::chainer::Chain;
use align::Alignment;
use serde::{Deserialize, Serialize};

/// One net entry: a chain admitted into the net with (possibly) a
/// truncated target interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetEntry {
    /// Index into the input chain slice.
    pub chain_index: usize,
    /// Target interval this chain owns in the net.
    pub target_start: usize,
    /// Exclusive end of the owned interval.
    pub target_end: usize,
    /// The chain's score.
    pub score: i64,
}

/// A target-disjoint selection of chains.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    entries: Vec<NetEntry>,
}

impl Net {
    /// The net entries, sorted by target start.
    pub fn entries(&self) -> &[NetEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the net is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total target bases covered by the net.
    pub fn covered_bases(&self) -> usize {
        self.entries.iter().map(|e| e.target_end - e.target_start).sum()
    }
}

/// Builds a net: chains are admitted best-score-first and own whatever
/// part of their target span is not yet owned by a better chain; chains
/// whose remaining span is shorter than `min_span` are dropped.
///
/// This is the greedy interval variant of chainNet (sufficient for
/// coverage accounting; the UCSC tool additionally nests child nets
/// inside gaps, which coverage numbers do not need).
///
/// # Examples
///
/// ```
/// use align::{AlignOp, Alignment, Cigar};
/// use chain::chainer::chain_alignments;
/// use chain::net::build_net;
///
/// let mut c = Cigar::new();
/// c.push(AlignOp::Match, 100);
/// let alignments = vec![
///     Alignment::new(0, 0, c.clone(), 9_000),
///     Alignment::new(50, 500, c.clone(), 5_000), // overlaps the first
/// ];
/// let chains = chain_alignments(&alignments, 0);
/// let net = build_net(&chains, &alignments, 10);
/// // The weaker overlapping chain only owns the non-overlapped tail.
/// assert_eq!(net.covered_bases(), 150);
/// ```
pub fn build_net(chains: &[Chain], alignments: &[Alignment], min_span: usize) -> Net {
    // Spans of all chains, best score first.
    let mut order: Vec<usize> = (0..chains.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(chains[i].score));

    // Owned intervals, kept sorted and disjoint.
    let mut owned: Vec<(usize, usize)> = Vec::new();
    let mut entries = Vec::new();
    for i in order {
        let (start, end) = chains[i].target_span(alignments);
        // Subtract already-owned intervals; admit remaining pieces.
        for (s, e) in subtract_intervals(start, end, &owned) {
            if e - s >= min_span {
                entries.push(NetEntry {
                    chain_index: i,
                    target_start: s,
                    target_end: e,
                    score: chains[i].score,
                });
                insert_interval(&mut owned, (s, e));
            }
        }
    }
    entries.sort_by_key(|e| e.target_start);
    Net { entries }
}

/// Pieces of `[start, end)` not covered by the sorted disjoint `owned`.
fn subtract_intervals(start: usize, end: usize, owned: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut pieces = Vec::new();
    let mut cursor = start;
    for &(s, e) in owned {
        if e <= cursor {
            continue;
        }
        if s >= end {
            break;
        }
        if s > cursor {
            pieces.push((cursor, s.min(end)));
        }
        cursor = cursor.max(e);
        if cursor >= end {
            break;
        }
    }
    if cursor < end {
        pieces.push((cursor, end));
    }
    pieces
}

/// Inserts an interval, keeping the list sorted and merging neighbours.
fn insert_interval(owned: &mut Vec<(usize, usize)>, interval: (usize, usize)) {
    let pos = owned.partition_point(|&(s, _)| s < interval.0);
    owned.insert(pos, interval);
    // Merge around the insertion point.
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(owned.len());
    for &(s, e) in owned.iter() {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    *owned = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chainer::chain_alignments;
    use align::{AlignOp, Cigar};

    fn block(t: usize, q: usize, len: u32, score: i64) -> Alignment {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, len);
        Alignment::new(t, q, c, score)
    }

    #[test]
    fn non_overlapping_chains_all_enter() {
        // Query order inverted so the two blocks cannot chain together.
        let a = [block(0, 900, 100, 9000), block(500, 100, 100, 8000)];
        let chains = chain_alignments(&a, 0);
        assert_eq!(chains.len(), 2);
        let net = build_net(&chains, &a, 10);
        assert_eq!(net.len(), 2);
        assert_eq!(net.covered_bases(), 200);
    }

    #[test]
    fn weaker_overlap_is_truncated() {
        // Paralogous chains over the same target: the stronger owns the
        // overlap.
        let a = [block(0, 0, 100, 9000), block(60, 900, 100, 5000)];
        let chains = chain_alignments(&a, 0);
        let net = build_net(&chains, &a, 10);
        assert_eq!(net.len(), 2);
        assert_eq!(net.covered_bases(), 160);
        // The strong chain owns [0,100); the weak one only [100,160).
        let weak = net.entries().iter().find(|e| e.score < 9000).unwrap();
        assert_eq!((weak.target_start, weak.target_end), (100, 160));
    }

    #[test]
    fn fully_shadowed_chain_is_dropped() {
        let a = [block(0, 0, 200, 9000), block(50, 900, 50, 2000)];
        let chains = chain_alignments(&a, 0);
        let net = build_net(&chains, &a, 10);
        assert_eq!(net.len(), 1);
        assert_eq!(net.covered_bases(), 200);
    }

    #[test]
    fn min_span_drops_slivers() {
        let a = [block(0, 0, 100, 9000), block(95, 900, 20, 2000)];
        let chains = chain_alignments(&a, 0);
        // Remaining sliver is [100,115): 15 bases < min_span 30.
        let net = build_net(&chains, &a, 30);
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn interval_subtraction() {
        let owned = vec![(10usize, 20usize), (30, 40)];
        assert_eq!(
            subtract_intervals(0, 50, &owned),
            vec![(0, 10), (20, 30), (40, 50)]
        );
        assert_eq!(subtract_intervals(12, 18, &owned), vec![]);
        assert_eq!(subtract_intervals(15, 35, &owned), vec![(20, 30)]);
    }

    #[test]
    fn empty_inputs() {
        let net = build_net(&[], &[], 10);
        assert!(net.is_empty());
        assert_eq!(net.covered_bases(), 0);
    }
}
