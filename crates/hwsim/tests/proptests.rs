//! Property-based validation of the cycle-level array simulations
//! against the software kernels.

use align::banded::banded_smith_waterman;
use align::xdrop::xdrop_tile;
use genome::{Base, GapPenalties, Sequence, SubstitutionMatrix};
use hwsim::bsw_array::BswTileGeometry;
use hwsim::rtl::simulate_bsw_tile;
use hwsim::rtl_gactx::simulate_gactx_tile;
use hwsim::systolic::ArrayConfig;
use proptest::prelude::*;

fn dna(min: usize, max: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(0u8..4, min..max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

fn scoring() -> (SubstitutionMatrix, GapPenalties) {
    (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bsw_rtl_equals_software_kernel(
        t in dna(8, 120),
        q in dna(8, 120),
        npe in 2usize..16,
        band in 2usize..24,
    ) {
        let (w, g) = scoring();
        let geometry = BswTileGeometry { tile_size: 128, band };
        let array = ArrayConfig { num_pe: npe, freq_hz: 1.0e8, tile_overhead_cycles: 0 };
        let sim = simulate_bsw_tile(t.as_slice(), q.as_slice(), &w, &g, &geometry, &array);
        let sw = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        prop_assert_eq!(sim.max_score, sw.max_score);
    }

    #[test]
    fn gactx_rtl_path_rescores_to_its_vmax(
        t in dna(8, 150),
        q in dna(8, 150),
        npe in 2usize..16,
    ) {
        let (w, g) = scoring();
        let array = ArrayConfig { num_pe: npe, freq_hz: 1.0e8, tile_overhead_cycles: 0 };
        let sim = simulate_gactx_tile(t.as_slice(), q.as_slice(), &w, &g, 9430, &array);
        let a = align::Alignment::new(0, 0, sim.cigar.clone(), sim.max_score);
        prop_assert!(a.validate(&t, &q).is_ok(), "{:?}", a.validate(&t, &q));
        prop_assert_eq!(sim.max_score, a.rescore(&t, &q, &w, &g));
    }

    #[test]
    fn gactx_rtl_never_beats_unpruned_software(
        t in dna(8, 120),
        q in dna(8, 120),
        y in 1000i64..20_000,
    ) {
        // Stripe-granular pruning is sandwiched between the row-granular
        // software kernel (below) and the unpruned kernel (above).
        let (w, g) = scoring();
        let array = ArrayConfig::fpga();
        let sim = simulate_gactx_tile(t.as_slice(), q.as_slice(), &w, &g, y, &array);
        let lower = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, y);
        let upper = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, i64::MAX / 8);
        prop_assert!(sim.max_score >= lower.max_score,
            "sim {} < software {}", sim.max_score, lower.max_score);
        prop_assert!(sim.max_score <= upper.max_score,
            "sim {} > unpruned {}", sim.max_score, upper.max_score);
    }

    #[test]
    fn bsw_rtl_cycles_scale_with_tile(
        npe in 2usize..32,
    ) {
        let (w, g) = scoring();
        let mut prev = 0u64;
        for tile in [64usize, 128, 256] {
            let geometry = BswTileGeometry { tile_size: tile, band: 8 };
            let array = ArrayConfig { num_pe: npe, freq_hz: 1.0e8, tile_overhead_cycles: 0 };
            let t: Sequence = (0..tile).map(|i| Base::from_code((i % 4) as u8)).collect();
            let sim = simulate_bsw_tile(t.as_slice(), t.as_slice(), &w, &g, &geometry, &array);
            prop_assert!(sim.cycles > prev);
            prev = sim.cycles;
        }
    }
}
