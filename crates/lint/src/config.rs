//! Manifest parsing and the linter's own error type.
//!
//! The manifest (`scripts/wga-lint.manifest`) is the single checked-in
//! source of truth for what the linter scans and what it tolerates:
//! which directories hold library code, which are exempt from the
//! panics rule, which must be panic-free with no baseline at all,
//! per-directory panic baselines, the module set that feeds
//! `canonical_text` (determinism rule), and the dataflow directories
//! whose queue graph the deadlock rule checks.
//!
//! Format: `[section]` headers, one entry per line, `#` comments.
//! Baseline entries are `<dir> <count>`. Paths are relative to the
//! workspace root and use `/` separators.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong in the linter. The lint crate holds
/// itself to its own panics rule (zero baseline), so every fallible
/// path returns this instead of unwrapping.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem failure reading a source file or writing the report.
    Io { path: PathBuf, msg: String },
    /// Malformed manifest line (1-based line number).
    Manifest { line: usize, msg: String },
    /// Bad command-line usage.
    Usage(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, msg } => {
                write!(f, "io error at {}: {}", path.display(), msg)
            }
            LintError::Manifest { line, msg } => {
                write!(f, "manifest line {}: {}", line, msg)
            }
            LintError::Usage(msg) => write!(f, "usage: {}", msg),
        }
    }
}

impl std::error::Error for LintError {}

/// Parsed manifest plus the resolved workspace root.
#[derive(Debug, Default)]
pub struct Config {
    /// Workspace root all manifest paths are relative to.
    pub root: PathBuf,
    /// Directories scanned for `.rs` files (recursively).
    pub scan_dirs: Vec<PathBuf>,
    /// Directory prefixes the panics rule skips entirely (bench code).
    pub panics_exempt: Vec<PathBuf>,
    /// Directory prefixes that must have *zero* panic sites — baselines
    /// do not apply here (the obs layer must never panic).
    pub panics_forbidden: Vec<PathBuf>,
    /// Per-directory allowed counts of pre-existing panic sites; the
    /// longest matching prefix wins. A directory not listed has
    /// baseline 0.
    pub panic_baselines: Vec<(PathBuf, usize)>,
    /// Files whose code feeds `canonical_text`; the determinism rule
    /// runs only on these.
    pub determinism_files: Vec<PathBuf>,
    /// Directory prefixes that are *classified off* the canonical
    /// surface: reachable from entry points but justified to hold
    /// nondeterminism (orchestration, telemetry, tooling). The taint
    /// pass requires every entry-reachable file to be in
    /// `[determinism]` or under one of these prefixes.
    pub determinism_exempt: Vec<PathBuf>,
    /// Fn names treated as canonical-output sinks by the taint pass
    /// (e.g. `canonical_text`, `paf_text`).
    pub determinism_sinks: Vec<String>,
    /// Fn names treated as pipeline entry points: roots for the
    /// panic-reachability and taint BFS (e.g. `align_assemblies`,
    /// `execute`, `main`).
    pub entry_points: Vec<String>,
    /// Directories holding dataflow stage/queue code; the deadlock
    /// rule runs only on these.
    pub deadlock_dirs: Vec<PathBuf>,
}

impl Config {
    /// Parses manifest text. `root` is attached verbatim; paths inside
    /// stay relative until file walking joins them.
    pub fn parse(root: PathBuf, text: &str) -> Result<Config, LintError> {
        let mut cfg = Config {
            root,
            ..Config::default()
        };
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(p) => raw[..p].trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                match rest.strip_suffix(']') {
                    Some(name) => {
                        section = name.trim().to_string();
                        continue;
                    }
                    None => {
                        return Err(LintError::Manifest {
                            line: lineno,
                            msg: format!("unterminated section header `{}`", line),
                        });
                    }
                }
            }
            match section.as_str() {
                "scan" => cfg.scan_dirs.push(PathBuf::from(line)),
                "panics-exempt" => cfg.panics_exempt.push(PathBuf::from(line)),
                "panics-forbidden" => cfg.panics_forbidden.push(PathBuf::from(line)),
                "baseline panics" => {
                    let (dir, count) = match line.rsplit_once(char::is_whitespace) {
                        Some((d, c)) => (d.trim(), c),
                        None => {
                            return Err(LintError::Manifest {
                                line: lineno,
                                msg: format!("baseline entry `{}` needs `<dir> <count>`", line),
                            });
                        }
                    };
                    let count: usize = match count.parse() {
                        Ok(c) => c,
                        Err(_) => {
                            return Err(LintError::Manifest {
                                line: lineno,
                                msg: format!("baseline count `{}` is not an integer", count),
                            });
                        }
                    };
                    cfg.panic_baselines.push((PathBuf::from(dir), count));
                }
                "determinism" => cfg.determinism_files.push(PathBuf::from(line)),
                "determinism-exempt" => cfg.determinism_exempt.push(PathBuf::from(line)),
                "determinism-sinks" => cfg.determinism_sinks.push(line.to_string()),
                "entry-points" => cfg.entry_points.push(line.to_string()),
                "deadlock" => cfg.deadlock_dirs.push(PathBuf::from(line)),
                "" => {
                    return Err(LintError::Manifest {
                        line: lineno,
                        msg: format!("entry `{}` before any [section]", line),
                    });
                }
                other => {
                    return Err(LintError::Manifest {
                        line: lineno,
                        msg: format!("unknown section `{}`", other),
                    });
                }
            }
        }
        // Longest-prefix baseline lookup depends on order only for
        // ties; sort so equal manifests always resolve identically.
        cfg.panic_baselines.sort();
        Ok(cfg)
    }

    /// Baseline for `file` (a root-relative path): the longest
    /// `[baseline panics]` prefix that contains it, with its allowed
    /// count. Unlisted code has baseline 0 attributed to the nearest
    /// scan dir containing it (or the file's parent as a fallback).
    pub fn baseline_for(&self, file: &std::path::Path) -> (PathBuf, usize) {
        let mut best: Option<(&PathBuf, usize)> = None;
        for (dir, count) in &self.panic_baselines {
            if file.starts_with(dir) {
                let better = match best {
                    Some((b, _)) => dir.components().count() > b.components().count(),
                    None => true,
                };
                if better {
                    best = Some((dir, *count));
                }
            }
        }
        if let Some((dir, count)) = best {
            return (dir.clone(), count);
        }
        for dir in &self.scan_dirs {
            if file.starts_with(dir) {
                return (dir.clone(), 0);
            }
        }
        (
            file.parent().map(PathBuf::from).unwrap_or_default(),
            0,
        )
    }

    /// Whether `file` sits under any of the given directory prefixes.
    pub fn under_any(file: &std::path::Path, dirs: &[PathBuf]) -> bool {
        dirs.iter().any(|d| file.starts_with(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const SAMPLE: &str = "
# comment
[scan]
src
crates/core/src

[panics-exempt]
crates/bench/src

[panics-forbidden]
crates/core/src/obs

[baseline panics]
crates/core/src 3
src 2

[determinism]
crates/genome/src/sequence.rs

[determinism-exempt]
crates/core/src/obs

[determinism-sinks]
canonical_text
paf_text

[entry-points]
align_assemblies
execute

[deadlock]
crates/core/src/dataflow
";

    #[test]
    fn parses_all_sections() {
        let cfg = Config::parse(PathBuf::from("/tmp"), SAMPLE).unwrap();
        assert_eq!(cfg.scan_dirs.len(), 2);
        assert_eq!(cfg.panics_exempt.len(), 1);
        assert_eq!(cfg.panics_forbidden.len(), 1);
        assert_eq!(cfg.panic_baselines.len(), 2);
        assert_eq!(cfg.determinism_files.len(), 1);
        assert_eq!(cfg.determinism_exempt.len(), 1);
        assert_eq!(cfg.determinism_sinks, vec!["canonical_text", "paf_text"]);
        assert_eq!(cfg.entry_points, vec!["align_assemblies", "execute"]);
        assert_eq!(cfg.deadlock_dirs.len(), 1);
    }

    #[test]
    fn longest_prefix_baseline_wins() {
        let text = "
[scan]
crates/core/src
[baseline panics]
crates/core/src 5
crates/core/src/dataflow 1
";
        let cfg = Config::parse(PathBuf::new(), text).unwrap();
        let (dir, n) = cfg.baseline_for(Path::new("crates/core/src/dataflow/executor.rs"));
        assert_eq!(dir, PathBuf::from("crates/core/src/dataflow"));
        assert_eq!(n, 1);
        let (dir, n) = cfg.baseline_for(Path::new("crates/core/src/lib.rs"));
        assert_eq!(dir, PathBuf::from("crates/core/src"));
        assert_eq!(n, 5);
    }

    #[test]
    fn unlisted_dir_gets_zero_baseline_at_scan_dir() {
        let text = "
[scan]
crates/genome/src
";
        let cfg = Config::parse(PathBuf::new(), text).unwrap();
        let (dir, n) = cfg.baseline_for(Path::new("crates/genome/src/fasta.rs"));
        assert_eq!(dir, PathBuf::from("crates/genome/src"));
        assert_eq!(n, 0);
    }

    #[test]
    fn rejects_orphan_entry_and_bad_section() {
        assert!(Config::parse(PathBuf::new(), "stray\n").is_err());
        assert!(Config::parse(PathBuf::new(), "[nope]\nx\n").is_err());
        assert!(Config::parse(PathBuf::new(), "[baseline panics]\nno-count\n").is_err());
    }
}
