//! Plane-sweep deduplication of the merged many-genome alignment set.
//!
//! All-vs-all matrices re-discover the same homology from several
//! directions: paralog pairs, both orientations of a repeat, near-tied
//! chains on adjacent diagonals. The post-filter sweeps each group of
//! alignments sharing `(target genome, target chromosome, query
//! genome, query chromosome, strand)` along the target axis and drops
//! an alignment when a *better* one (higher score; ties broken by
//! canonical order) covers at least half of both its target span and
//! its query span. Only surviving alignments can suppress others, and
//! candidates are judged in a fixed order, so the result is a pure
//! function of the input set — dedup semantics identical on every
//! executor and thread count by construction.

use super::ManyAlignment;

/// What the sweep did, for the `sweep` line of the canonical report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Alignments surviving the sweep.
    pub kept: u64,
    /// Alignments dropped as redundant overlaps.
    pub dropped: u64,
}

/// Half-open span helpers over the underlying alignment coordinates.
fn target_span(a: &ManyAlignment) -> (usize, usize) {
    (
        a.aligned.alignment.target_start,
        a.aligned.alignment.target_end,
    )
}

fn query_span(a: &ManyAlignment) -> (usize, usize) {
    (
        a.aligned.alignment.query_start,
        a.aligned.alignment.query_end,
    )
}

fn overlap(a: (usize, usize), b: (usize, usize)) -> usize {
    a.1.min(b.1).saturating_sub(a.0.max(b.0))
}

/// True when `better` covers at least half of `worse` on both axes.
fn shadows(better: &ManyAlignment, worse: &ManyAlignment) -> bool {
    let (wt, wq) = (target_span(worse), query_span(worse));
    let t_overlap = overlap(target_span(better), wt);
    let q_overlap = overlap(query_span(better), wq);
    2 * t_overlap >= wt.1 - wt.0 && 2 * q_overlap >= wq.1 - wq.0
}

/// Rank of an alignment inside its group: higher score wins; the tie
/// falls back to canonical input order (earlier wins), so equal-score
/// duplicates resolve identically everywhere.
fn beats(a: &ManyAlignment, a_idx: usize, b: &ManyAlignment, b_idx: usize) -> bool {
    let (sa, sb) = (a.aligned.alignment.score, b.aligned.alignment.score);
    sa > sb || (sa == sb && a_idx < b_idx)
}

/// Sweeps the alignment set, returning the survivors in their original
/// (canonical) order plus the drop statistics.
pub fn plane_sweep(alignments: Vec<ManyAlignment>) -> (Vec<ManyAlignment>, SweepStats) {
    let n = alignments.len();
    // Group by lane: same target genome+chromosome, query
    // genome+chromosome and strand. Input order within a group is the
    // canonical order, preserved as the tie-break rank.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| lane_key(&alignments[x]).cmp(&lane_key(&alignments[y])).then(x.cmp(&y)));

    let mut dropped = vec![false; n];
    let mut start = 0;
    while start < order.len() {
        let mut end = start + 1;
        while end < order.len()
            && lane_key(&alignments[order[start]]) == lane_key(&alignments[order[end]])
        {
            end += 1;
        }
        sweep_lane(&alignments, &order[start..end], &mut dropped);
        start = end;
    }

    let mut kept = Vec::with_capacity(n);
    let mut stats = SweepStats::default();
    for (idx, alignment) in alignments.into_iter().enumerate() {
        if dropped[idx] {
            stats.dropped += 1;
        } else {
            stats.kept += 1;
            kept.push(alignment);
        }
    }
    (kept, stats)
}

type LaneKey<'a> = (&'a str, &'a str, &'a str, &'a str, bool);

fn lane_key(a: &ManyAlignment) -> LaneKey<'_> {
    (
        a.target_genome.as_str(),
        a.target_chrom.as_str(),
        a.query_genome.as_str(),
        a.query_chrom.as_str(),
        matches!(a.aligned.strand, crate::report::Strand::Reverse),
    )
}

/// The sweep proper, over one lane. `members` holds original indices.
/// Events advance along the target axis; an active window carries every
/// alignment whose target interval is still open, so each candidate is
/// only compared against actual target-overlap, not the whole lane.
fn sweep_lane(alignments: &[ManyAlignment], members: &[usize], dropped: &mut [bool]) {
    // Sweep in ascending target_start (ties: canonical order), closing
    // expired intervals as the line advances.
    let mut by_start: Vec<usize> = members.to_vec();
    by_start.sort_by_key(|&i| (target_span(&alignments[i]).0, i));

    let mut active: Vec<usize> = Vec::new();
    for &i in &by_start {
        let (t_start, _) = target_span(&alignments[i]);
        active.retain(|&j| target_span(&alignments[j]).1 > t_start);
        for &j in &active {
            if dropped[j] || dropped[i] {
                continue;
            }
            if beats(&alignments[j], j, &alignments[i], i) {
                if shadows(&alignments[j], &alignments[i]) {
                    dropped[i] = true;
                }
            } else if shadows(&alignments[i], &alignments[j]) {
                dropped[j] = true;
            }
        }
        active.push(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Strand, WgaAlignment};
    use align::alignment::Alignment;
    use align::cigar::{AlignOp, Cigar};

    fn aln(t_start: usize, q_start: usize, len: usize, score: i64) -> ManyAlignment {
        let mut cigar = Cigar::new();
        cigar.push(AlignOp::Match, len as u32);
        ManyAlignment {
            target_genome: "a".into(),
            target_chrom: "chr".into(),
            query_genome: "b".into(),
            query_chrom: "chr".into(),
            aligned: WgaAlignment {
                alignment: Alignment::new(t_start, q_start, cigar, score),
                strand: Strand::Forward,
            },
        }
    }

    #[test]
    fn heavy_overlap_drops_the_weaker() {
        let (kept, stats) = plane_sweep(vec![aln(0, 0, 100, 500), aln(10, 10, 100, 300)]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].aligned.alignment.score, 500);
        assert_eq!(stats, SweepStats { kept: 1, dropped: 1 });
    }

    #[test]
    fn disjoint_alignments_all_survive() {
        let (kept, stats) = plane_sweep(vec![aln(0, 0, 50, 100), aln(200, 200, 50, 90)]);
        assert_eq!(kept.len(), 2);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn same_target_different_query_survives() {
        // Two paralogous query copies mapping to one target region:
        // target overlaps fully, query spans are disjoint — keep both.
        let (kept, _) = plane_sweep(vec![aln(0, 0, 100, 500), aln(0, 1_000, 100, 400)]);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn different_lanes_never_interact() {
        let mut other = aln(0, 0, 100, 1);
        other.query_chrom = "chr2".into();
        let (kept, _) = plane_sweep(vec![aln(0, 0, 100, 500), other]);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn equal_scores_keep_the_canonical_first() {
        let (kept, _) = plane_sweep(vec![aln(5, 5, 100, 400), aln(0, 0, 100, 400)]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].aligned.alignment.target_start, 5, "input order wins ties");
    }

    #[test]
    fn survivors_keep_canonical_order() {
        let input = vec![aln(300, 300, 50, 10), aln(0, 0, 50, 20), aln(150, 150, 50, 30)];
        let (kept, _) = plane_sweep(input.clone());
        assert_eq!(kept, input, "no overlap: order must be untouched");
    }
}
