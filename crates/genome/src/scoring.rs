//! Alignment scoring: substitution matrices and affine gap penalties.
//!
//! The constructors reproduce the paper's Table IIa exactly (the LASTZ
//! default scoring set): the HOXD70-derived substitution matrix with
//! `gap open = 430`, `gap extend = 30` (penalties stored positive and
//! subtracted by the DP recurrences, matching equations 1–3 of §IV).

use crate::alphabet::Base;
use serde::{Deserialize, Serialize};

/// A 5×5 substitution score matrix over `{A, C, G, T, N}`.
///
/// Scores involving `N` default to a strongly negative value so ambiguous
/// bases never seed or extend matches.
///
/// # Examples
///
/// ```
/// use genome::{Base, scoring::SubstitutionMatrix};
///
/// let w = SubstitutionMatrix::darwin_wga();
/// assert_eq!(w.score(Base::A, Base::A), 91);
/// assert_eq!(w.score(Base::A, Base::G), -25); // transitions are cheap
/// assert_eq!(w.score(Base::A, Base::T), -100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubstitutionMatrix {
    scores: [[i32; 5]; 5],
}

impl SubstitutionMatrix {
    /// Score assigned to any pair involving `N`.
    pub const N_SCORE: i32 = -1000;

    /// The Darwin-WGA / LASTZ default matrix (paper Table IIa).
    pub fn darwin_wga() -> SubstitutionMatrix {
        let table: [[i32; 4]; 4] = [
            //        A     C     G     T
            /* A */ [91, -90, -25, -100],
            /* C */ [-90, 100, -100, -25],
            /* G */ [-25, -100, 100, -90],
            /* T */ [-100, -25, -90, 91],
        ];
        SubstitutionMatrix::from_table(table)
    }

    /// A simple `+match/-mismatch` matrix.
    pub fn simple(match_score: i32, mismatch_penalty: i32) -> SubstitutionMatrix {
        let mut table = [[0i32; 4]; 4];
        for (i, row) in table.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = if i == j { match_score } else { -mismatch_penalty.abs() };
            }
        }
        SubstitutionMatrix::from_table(table)
    }

    /// Builds from an explicit 4×4 table (row = first base, column = second,
    /// in `A C G T` order); `N` rows/columns get [`Self::N_SCORE`].
    pub fn from_table(table: [[i32; 4]; 4]) -> SubstitutionMatrix {
        let mut scores = [[Self::N_SCORE; 5]; 5];
        for i in 0..4 {
            scores[i][..4].copy_from_slice(&table[i]);
        }
        SubstitutionMatrix { scores }
    }

    /// The score of aligning `a` against `b`.
    #[inline]
    pub fn score(&self, a: Base, b: Base) -> i32 {
        self.scores[a.code() as usize][b.code() as usize]
    }

    /// The largest score in the matrix (the best match).
    pub fn max_score(&self) -> i32 {
        let mut best = i32::MIN;
        for i in 0..4 {
            for j in 0..4 {
                best = best.max(self.scores[i][j]);
            }
        }
        best
    }
}

impl Default for SubstitutionMatrix {
    fn default() -> Self {
        SubstitutionMatrix::darwin_wga()
    }
}

/// Affine gap penalties, stored as positive magnitudes.
///
/// Opening a gap of length `L` costs `open + L * extend` in total (the
/// "open" charge applies to the first gapped base in addition to its
/// extension charge, matching LASTZ and equations 1–2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapPenalties {
    /// Gap-open penalty (positive).
    pub open: i32,
    /// Per-base gap-extension penalty (positive).
    pub extend: i32,
}

impl GapPenalties {
    /// The Darwin-WGA / LASTZ defaults (Table IIa): open 430, extend 30.
    pub fn darwin_wga() -> GapPenalties {
        GapPenalties {
            open: 430,
            extend: 30,
        }
    }

    /// Creates penalties from positive magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative.
    pub fn new(open: i32, extend: i32) -> GapPenalties {
        assert!(open >= 0 && extend >= 0, "gap penalties must be positive");
        GapPenalties { open, extend }
    }

    /// Total cost of a gap of `len` bases.
    pub fn cost(&self, len: usize) -> i64 {
        if len == 0 {
            0
        } else {
            self.open as i64 + self.extend as i64 * len as i64
        }
    }
}

impl Default for GapPenalties {
    fn default() -> Self {
        GapPenalties::darwin_wga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn darwin_wga_matrix_matches_table_2a() {
        let w = SubstitutionMatrix::darwin_wga();
        assert_eq!(w.score(Base::A, Base::A), 91);
        assert_eq!(w.score(Base::C, Base::C), 100);
        assert_eq!(w.score(Base::G, Base::G), 100);
        assert_eq!(w.score(Base::T, Base::T), 91);
        assert_eq!(w.score(Base::A, Base::C), -90);
        assert_eq!(w.score(Base::C, Base::A), -90);
        assert_eq!(w.score(Base::A, Base::G), -25);
        assert_eq!(w.score(Base::G, Base::T), -90);
        assert_eq!(w.score(Base::C, Base::G), -100);
        assert_eq!(w.score(Base::T, Base::A), -100);
        assert_eq!(w.max_score(), 100);
    }

    #[test]
    fn matrix_is_symmetric() {
        let w = SubstitutionMatrix::darwin_wga();
        for &a in &Base::DNA {
            for &b in &Base::DNA {
                assert_eq!(w.score(a, b), w.score(b, a));
            }
        }
    }

    #[test]
    fn transitions_score_higher_than_transversions() {
        let w = SubstitutionMatrix::darwin_wga();
        for &a in &Base::DNA {
            for &b in &Base::DNA {
                if a.is_transition(b) {
                    for &c in &Base::DNA {
                        if a.is_transversion(c) {
                            assert!(w.score(a, b) > w.score(a, c));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn n_never_scores_positively() {
        let w = SubstitutionMatrix::darwin_wga();
        for &b in &[Base::A, Base::C, Base::G, Base::T, Base::N] {
            assert_eq!(w.score(Base::N, b), SubstitutionMatrix::N_SCORE);
            assert_eq!(w.score(b, Base::N), SubstitutionMatrix::N_SCORE);
        }
    }

    #[test]
    fn simple_matrix() {
        let w = SubstitutionMatrix::simple(2, 3);
        assert_eq!(w.score(Base::A, Base::A), 2);
        assert_eq!(w.score(Base::A, Base::T), -3);
    }

    #[test]
    fn gap_cost() {
        let g = GapPenalties::darwin_wga();
        assert_eq!(g.cost(0), 0);
        assert_eq!(g.cost(1), 460);
        assert_eq!(g.cost(10), 430 + 300);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn gap_penalties_validate() {
        GapPenalties::new(-1, 30);
    }
}
