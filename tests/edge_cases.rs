//! Edge-case and failure-injection integration tests: degenerate inputs
//! must produce sane (empty or small) results, never panics.

use darwin_wga::core::{config::WgaParams, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use darwin_wga::genome::{Base, Sequence};
use rand::SeedableRng;

fn run(target: &Sequence, query: &Sequence) -> darwin_wga::core::WgaReport {
    WgaPipeline::new(WgaParams::darwin_wga()).run(target, query)
}

#[test]
fn empty_and_tiny_sequences() {
    let empty = Sequence::new();
    let tiny: Sequence = "ACGT".parse().unwrap();
    let normal: Sequence = "ACGTACGTACGTACGTACGTACGT".parse().unwrap();
    for (t, q) in [
        (&empty, &empty),
        (&empty, &normal),
        (&normal, &empty),
        (&tiny, &tiny),
        (&tiny, &normal),
    ] {
        let report = run(t, q);
        assert!(report.alignments.is_empty());
    }
}

#[test]
fn all_n_sequences_never_align() {
    let ns: Sequence = (0..5000).map(|_| Base::N).collect();
    let report = run(&ns, &ns);
    assert_eq!(report.counters.raw_seed_hits, 0);
    assert!(report.alignments.is_empty());
}

#[test]
fn identical_sequences_align_fully() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let s = darwin_wga::genome::markov::MarkovModel::genome_like().generate(20_000, &mut rng);
    let report = run(&s, &s);
    // One (or a few) alignments covering essentially everything.
    assert!(report.total_matches() as f64 > 0.99 * s.len() as f64);
}

#[test]
fn zero_distance_pair_is_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let pair = SyntheticPair::generate(5_000, &EvolutionParams::at_distance(0.0), &mut rng);
    assert_eq!(pair.target.sequence, pair.query.sequence);
    assert_eq!(
        pair.orthologous_pairs().len(),
        pair.target.sequence.len()
    );
}

#[test]
fn extreme_evolution_parameters_do_not_panic() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for params in [
        EvolutionParams {
            conserved_fraction: 0.0,
            ..EvolutionParams::at_distance(0.5)
        },
        EvolutionParams {
            conserved_fraction: 0.9,
            conserved_mean_len: 50,
            ..EvolutionParams::at_distance(0.5)
        },
        EvolutionParams {
            indels_per_substitution: 0.0,
            turnover_per_kb: 0.0,
            duplications_per_mbp: 0.0,
            ..EvolutionParams::at_distance(0.3)
        },
        EvolutionParams {
            distance: 2.5, // saturated
            ..EvolutionParams::default()
        },
    ] {
        let pair = SyntheticPair::generate(4_000, &params, &mut rng);
        assert!(pair.target.sequence.len() > 1_000);
        let _ = run(&pair.target.sequence, &pair.query.sequence);
    }
}

#[test]
fn asymmetric_lengths() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let model = darwin_wga::genome::markov::MarkovModel::genome_like();
    let long = model.generate(30_000, &mut rng);
    let short = long.subsequence(12_000..13_000);
    // Query is a tiny window of the target: must be found, once.
    let report = run(&long, &short);
    assert!(!report.alignments.is_empty());
    let best = &report.alignments[0].alignment;
    assert!(best.matches() >= 990, "{}", best.matches());
    assert!((11_900..12_100).contains(&best.target_start));
}

#[test]
fn n_runs_inside_sequences_are_handled() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let model = darwin_wga::genome::markov::MarkovModel::genome_like();
    let left = model.generate(5_000, &mut rng);
    let right = model.generate(5_000, &mut rng);
    let mut t = left.clone();
    t.extend((0..500).map(|_| Base::N));
    t.extend(right.iter());
    let mut q = left;
    q.extend((0..480).map(|_| Base::N));
    q.extend(right.iter());
    let report = run(&t, &q);
    // Both flanks align; no alignment may claim matched Ns.
    assert!(report.total_matches() >= 9_800);
    for wa in &report.alignments {
        wa.alignment.validate(&t, &q).unwrap();
    }
}

/// Malformed user input must exit with code 1 and a single clean error
/// line — never a panic, never a backtrace.
mod cli {
    use std::path::PathBuf;
    use std::process::{Command, Output};

    fn tmp(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "wga-edge-{}-{}",
            std::process::id(),
            name
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn wga(args: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_wga"))
            .args(args)
            .output()
            .expect("spawn wga")
    }

    /// Asserts a clean failure: exit code 1, exactly one stderr line, and
    /// it is an `error:` line (not a panic message).
    fn assert_clean_failure(out: &Output, expect: &str) {
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
        assert!(!stderr.contains("panicked"), "stderr: {stderr}");
        let lines: Vec<&str> = stderr.lines().collect();
        assert_eq!(lines.len(), 1, "stderr: {stderr}");
        assert!(lines[0].starts_with("error:"), "stderr: {stderr}");
        assert!(lines[0].contains(expect), "stderr: {stderr}");
    }

    #[test]
    fn align_rejects_empty_fasta() {
        let path = tmp("empty.fa", "");
        let out = wga(&[
            "align",
            path.to_str().unwrap(),
            path.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "no records");
    }

    #[test]
    fn align_rejects_sequence_before_header() {
        let good = tmp("truncated-good.fa", ">chr1\nACGTACGT\n");
        // A FASTA truncated such that data precedes the first header.
        let bad = tmp("truncated.fa", "ACGTACGT\n>chr1\nACGT\n");
        let out = wga(&[
            "align",
            bad.to_str().unwrap(),
            good.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "header");
    }

    #[test]
    fn align_rejects_invalid_bases() {
        let good = tmp("badbyte-good.fa", ">chr1\nACGTACGT\n");
        let bad = tmp("badbyte.fa", ">chr1\nACGT@CGT\n");
        let out = wga(&[
            "align",
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "invalid sequence byte");
    }

    #[test]
    fn align_rejects_duplicate_record_names() {
        let good = tmp("dup-good.fa", ">chr1\nACGTACGT\n");
        let bad = tmp("dup.fa", ">chr1\nACGT\n>chr1\nTTTT\n");
        let out = wga(&[
            "align",
            bad.to_str().unwrap(),
            good.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "duplicate record name");
    }

    #[test]
    fn align_rejects_zero_threads() {
        let good = tmp("threads-good.fa", ">chr1\nACGTACGT\n");
        let out = wga(&[
            "align",
            good.to_str().unwrap(),
            good.to_str().unwrap(),
            "--threads",
            "0",
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
        assert!(stderr.contains("invalid configuration"), "stderr: {stderr}");
    }

    /// `--metrics-out` / `--trace-out` pointing at an unwritable path
    /// must fail before the run starts: exactly one stderr line means
    /// the "aligning ..." banner (printed after the files are opened)
    /// never appeared.
    #[test]
    fn align_metrics_out_fails_fast_on_unwritable_path() {
        let good = tmp("obs-good.fa", ">chr1\nACGTACGT\n");
        let missing = std::env::temp_dir()
            .join(format!("wga-edge-no-such-dir-{}", std::process::id()))
            .join("m.json");
        let out = wga(&[
            "align",
            good.to_str().unwrap(),
            good.to_str().unwrap(),
            "--metrics-out",
            missing.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "m.json");
    }

    #[test]
    fn align_trace_out_fails_fast_on_unwritable_path() {
        let good = tmp("obs-trace-good.fa", ">chr1\nACGTACGT\n");
        let missing = std::env::temp_dir()
            .join(format!("wga-edge-no-such-dir-{}", std::process::id()))
            .join("t.jsonl");
        let out = wga(&[
            "align",
            good.to_str().unwrap(),
            good.to_str().unwrap(),
            "--trace-out",
            missing.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "t.jsonl");
    }

    /// `--metrics-out` is no longer gated on the dataflow executor.
    #[test]
    fn align_metrics_out_works_on_the_barrier_executor() {
        let core = "ACGGTCAGTCGATTGCAGTCCATGGACTGATC".repeat(40);
        let fa = tmp("obs-metrics.fa", &format!(">chr1\n{core}\n"));
        let metrics = std::env::temp_dir().join(format!(
            "wga-edge-metrics-{}.json",
            std::process::id()
        ));
        let out = wga(&[
            "align",
            fa.to_str().unwrap(),
            fa.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        let _ = std::fs::remove_file(&metrics);
        assert!(json.contains("\"executor\":\"barrier\""), "{json}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("stage metrics"), "stdout: {stdout}");
    }

    #[test]
    fn align_accepts_crlf_lowercase_and_n_runs() {
        let core = "ACGGTCAGTCGATTGCAGTCCATGGACTGATC".repeat(40);
        let target = tmp(
            "crlf-target.fa",
            &format!(">chr1 desc\r\n{}\r\nNNNN\r\n", core),
        );
        let query = tmp(
            "crlf-query.fa",
            &format!(">chr1\n{}\nnnnn\n", core.to_lowercase()),
        );
        let out = wga(&[
            "align",
            target.to_str().unwrap(),
            query.to_str().unwrap(),
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("matched base pairs"), "stdout: {stdout}");
    }

    #[test]
    fn align_accepts_header_only_records() {
        let good = tmp("headeronly-good.fa", ">chr1\nACGTACGT\n");
        let empty_record = tmp("headeronly.fa", ">chr1\n");
        let out = wga(&[
            "align",
            good.to_str().unwrap(),
            empty_record.to_str().unwrap(),
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    }

    #[test]
    fn exons_rejects_bad_maf_block() {
        let maf = tmp(
            "bad.maf",
            "##maf version=1\na score=12\nnot an s line\n",
        );
        let exons = tmp("bad-maf-exons.tsv", "chr1\te0\t0\t100\n");
        let out = wga(&[
            "exons",
            maf.to_str().unwrap(),
            exons.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "expected 's' line");
    }

    #[test]
    fn exons_rejects_bad_exon_table() {
        let maf = tmp("empty.maf", "##maf version=1\n");
        let exons = tmp("bad-exons.tsv", "only-two\tfields\n");
        let out = wga(&[
            "exons",
            maf.to_str().unwrap(),
            exons.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "bad line");
    }
}

#[test]
fn maf_of_empty_report_is_just_a_header() {
    let t: Sequence = "ACGT".parse().unwrap();
    let mut out = Vec::new();
    darwin_wga::core::maf::write_maf(&mut out, "t", &t, "q", &t, &[]).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 1);
    assert!(darwin_wga::core::maf::read_maf(text.as_bytes()).unwrap().is_empty());
}
