//! Many-genome mode: the pairwise aligner as a pangenome engine.
//!
//! `wga many` aligns every (or every *near*, under `--knn`) unordered
//! pair of an N-genome set through the existing pairwise pipeline,
//! sharing one lazily-built seed index across the whole pair matrix:
//!
//! * [`index::MultiIndex`] — seed tables keyed by `(genome, chrom)`,
//!   built once via the sharded builder with the k-mer frequency cap
//!   scaled by genome count ([`index::scaled_params`]);
//! * [`mash`] / [`joblist`] — integer-only bottom-k sketches and the
//!   all-vs-all joblist, optionally kNN-sparsified;
//! * the orchestrator ([`align_many`]) — runs each scheduled pair
//!   through [`crate::genome_pipeline::align_assemblies_provided`] on
//!   the configured executor, with budgets, fault injection, retry,
//!   watchdog and a *per-genome-pair* checkpoint journal, so an
//!   N-genome run resumes at pair granularity;
//! * [`plane_sweep`] — dedups overlapping alignments across the merged
//!   result set;
//! * [`paf`] — renders the survivors as PAF.
//!
//! Determinism contract: [`ManyReport::canonical_text`] and the PAF are
//! byte-identical across executors, thread counts, shard sizes and
//! shared-index vs per-pair-index modes. Everything order-sensitive
//! walks the joblist's canonical `(a, b)` order; everything timed or
//! scheduled stays out of the canonical surfaces.

pub mod index;
pub mod joblist;
pub mod mash;
pub mod paf;
pub mod plane_sweep;

use crate::config::WgaParams;
use crate::dataflow::{ExecutorKind, DEFAULT_QUEUE_DEPTH};
use crate::error::{WgaError, WgaResult};
use crate::faultsim::FaultPlan;
use crate::genome_pipeline::{align_assemblies_provided, AlignOptions, SeedTableFn};
use crate::obs::Obs;
use crate::report::{FunnelCounters, RunOutcome, StageTimings, WgaAlignment};
use genome::assembly::Assembly;
use hwsim::Workload;
use index::MultiIndex;
use joblist::PairPlan;
use mash::Sketch;
use plane_sweep::SweepStats;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Options of a many-genome run. The executor knobs mirror
/// [`AlignOptions`]; `checkpoint_dir` replaces the single journal path
/// with a directory holding one journal per genome pair.
#[derive(Debug, Clone)]
pub struct ManyOptions {
    /// Worker threads for every inner pairwise run.
    pub threads: usize,
    /// Executor driving each pair.
    pub executor: ExecutorKind,
    /// Dataflow queue depth.
    pub queue_depth: usize,
    /// Supervised-retry budget per I/O site.
    pub max_retries: u32,
    /// Watchdog stall timeout (0 = disabled).
    pub stall_timeout_ms: u64,
    /// Fault plan applied to every inner run (chaos testing).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Checkpoint directory: one `pair_<a>_<b>.journal` per scheduled
    /// pair, created on demand. A rerun pointing at the same directory
    /// replays completed pairs and recomputes the rest.
    pub checkpoint_dir: Option<PathBuf>,
    /// Keep only pairs where either genome ranks the other in its `k`
    /// nearest by sketch distance; `None` = all pairs.
    pub knn: Option<usize>,
    /// Share one seed index across the matrix (default). `false`
    /// rebuilds tables per pair — same bytes out, slower; exists so the
    /// equivalence is testable.
    pub shared_index: bool,
}

impl Default for ManyOptions {
    fn default() -> Self {
        ManyOptions {
            threads: 1,
            executor: ExecutorKind::default(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_retries: 1,
            stall_timeout_ms: 0,
            fault_plan: None,
            checkpoint_dir: None,
            knn: None,
            shared_index: true,
        }
    }
}

/// One genome of the input set, as the canonical report describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenomeSummary {
    /// Assembly name.
    pub name: String,
    /// Chromosome count.
    pub chromosomes: u64,
    /// Total bases.
    pub bases: u64,
}

/// One unordered genome pair's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManyPair {
    /// Target-side genome name (lower index).
    pub target_genome: String,
    /// Query-side genome name (higher index).
    pub query_genome: String,
    /// False when kNN sparsification skipped the pair.
    pub scheduled: bool,
    /// Sketch hashes the genomes share (the kNN ranking signal).
    pub shared: u64,
    /// Chromosome pairs that completed cleanly.
    pub completed: u64,
    /// Chromosome pairs that completed degraded (budget exceeded).
    pub degraded: u64,
    /// Chromosome pairs that failed.
    pub failed: u64,
}

/// One alignment of the merged, deduplicated set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManyAlignment {
    /// Target genome name.
    pub target_genome: String,
    /// Target chromosome name.
    pub target_chrom: String,
    /// Query genome name.
    pub query_genome: String,
    /// Query chromosome name.
    pub query_chrom: String,
    /// The alignment, coordinates as the pairwise pipeline reports them
    /// (reverse-strand query coordinates on the reverse complement).
    pub aligned: WgaAlignment,
}

/// Result of a many-genome run.
#[derive(Debug, Clone, Default)]
pub struct ManyReport {
    /// The input genome set, in input order.
    pub genomes: Vec<GenomeSummary>,
    /// Every unordered pair in canonical `(a, b)` order.
    pub pairs: Vec<ManyPair>,
    /// Surviving alignments after the plane sweep, grouped by pair in
    /// canonical order, score-descending within a pair.
    pub alignments: Vec<ManyAlignment>,
    /// Plane-sweep kept/dropped statistics.
    pub sweep: SweepStats,
    /// Aggregate pipeline workload over all scheduled pairs.
    pub workload: Workload,
    /// Aggregate stage timings (telemetry; excluded from canonical
    /// output).
    pub timings: StageTimings,
    /// Aggregate funnel counters (telemetry; excluded from canonical
    /// output).
    pub counters: FunnelCounters,
    /// Chromosome pairs replayed from checkpoint journals.
    pub resumed_pairs: u64,
    /// The kNN setting the run used.
    pub knn: Option<usize>,
    /// Seed tables built (shared-index mode builds each at most once).
    pub tables_built: u64,
}

impl ManyReport {
    /// The deterministic comparison surface: genome roster, pair
    /// outcomes, surviving alignments, workload and sweep statistics.
    /// Byte-identical across executors, thread counts, shard sizes and
    /// index modes; timings, counters and resume provenance stay out.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        for genome in &self.genomes {
            out.push_str(&format!(
                "genome\t{}\t{}\t{}\n",
                genome.name, genome.chromosomes, genome.bases
            ));
        }
        for pair in &self.pairs {
            let status = if pair.scheduled {
                format!("c{}d{}f{}", pair.completed, pair.degraded, pair.failed)
            } else {
                "skipped".to_string()
            };
            out.push_str(&format!(
                "mpair\t{}\t{}\t{}\t{}\n",
                pair.target_genome, pair.query_genome, pair.shared, status
            ));
        }
        for a in &self.alignments {
            out.push_str(&format!(
                "aln\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                a.target_genome,
                a.target_chrom,
                a.query_genome,
                a.query_chrom,
                match a.aligned.strand {
                    crate::report::Strand::Forward => '+',
                    crate::report::Strand::Reverse => '-',
                },
                a.aligned.alignment.target_start,
                a.aligned.alignment.query_start,
                a.aligned.alignment.score,
                a.aligned.alignment.cigar
            ));
        }
        let w = &self.workload;
        out.push_str(&format!(
            "workload\t{}\t{}\t{}\t{}\t{}\n",
            w.seeds, w.filter_tiles, w.extension_tiles, w.extension_cells, w.extension_rows
        ));
        out.push_str(&format!("sweep\t{}\t{}\n", self.sweep.kept, self.sweep.dropped));
        out
    }

    /// One-paragraph human summary for CLI output.
    pub fn summary(&self) -> String {
        let scheduled = self.pairs.iter().filter(|p| p.scheduled).count();
        let skipped = self.pairs.len() - scheduled;
        let failed: u64 = self.pairs.iter().map(|p| p.failed).sum();
        format!(
            "many-genome run: {} genomes, {} pairs ({} aligned, {} skipped by knn), \
             {} alignments kept, {} dropped as overlaps, {} tables built, \
             {} chromosome pairs resumed, {} failed",
            self.genomes.len(),
            self.pairs.len(),
            scheduled,
            skipped,
            self.sweep.kept,
            self.sweep.dropped,
            self.tables_built,
            self.resumed_pairs,
            failed
        )
    }
}

/// Aligns every scheduled genome pair; see the module docs.
///
/// # Errors
///
/// [`WgaError::Config`] on degenerate parameters, fewer than two
/// genomes, duplicate genome names or zero threads; journal errors
/// ([`WgaError::Checkpoint`] / [`WgaError::Io`]) from any pair
/// propagate.
pub fn align_many(
    params: &WgaParams,
    genomes: &[Assembly],
    options: &ManyOptions,
) -> WgaResult<ManyReport> {
    align_many_observed(params, genomes, options, Obs::off())
}

/// [`align_many`] with an observability hook threaded into every inner
/// pairwise run.
pub fn align_many_observed(
    params: &WgaParams,
    genomes: &[Assembly],
    options: &ManyOptions,
    obs: Obs<'_>,
) -> WgaResult<ManyReport> {
    params.validate()?;
    if genomes.len() < 2 {
        return Err(WgaError::config("many-genome mode needs at least two genomes"));
    }
    if options.threads == 0 {
        return Err(WgaError::config("threads must be at least 1"));
    }
    if options.knn == Some(0) {
        return Err(WgaError::config("knn must be at least 1 (omit it to align all pairs)"));
    }
    let names: BTreeSet<&str> = genomes.iter().map(|g| g.name.as_str()).collect();
    if names.len() != genomes.len() {
        return Err(WgaError::config("genome names must be unique"));
    }
    if let Some(dir) = &options.checkpoint_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| WgaError::io(format!("checkpoint dir {}", dir.display()), e))?;
    }

    // One scaled parameter set for the whole run — both index modes use
    // it, which is what makes them byte-identical.
    let scaled = index::scaled_params(params, genomes.len());
    let sketches: Vec<Sketch> = genomes.iter().map(Sketch::of_assembly).collect();
    let plans: Vec<PairPlan> = joblist::build_joblist(&sketches, options.knn);
    let shared_index = MultiIndex::new(scaled.clone(), genomes, options.threads);

    // Announce the matrix-wide chromosome-pair total once, up front, so
    // a progress meter shows run-level completion; the per-pair
    // pipelines get a muted handle below so their own per-run totals
    // cannot clobber it.
    let total_chrom_pairs: u64 = plans
        .iter()
        .filter(|p| p.scheduled)
        .map(|p| (genomes[p.a].chromosomes().len() * genomes[p.b].chromosomes().len()) as u64)
        .sum();
    obs.set_total_pairs(total_chrom_pairs);
    let pair_obs = obs.with_muted_totals();

    let mut report = ManyReport {
        genomes: genomes
            .iter()
            .map(|g| GenomeSummary {
                name: g.name.clone(),
                chromosomes: g.chromosomes().len() as u64,
                bases: g.total_bases() as u64,
            })
            .collect(),
        knn: options.knn,
        ..ManyReport::default()
    };

    let mut merged: Vec<ManyAlignment> = Vec::new();
    for plan in &plans {
        let target = &genomes[plan.a];
        let query = &genomes[plan.b];
        let mut pair = ManyPair {
            target_genome: target.name.clone(),
            query_genome: query.name.clone(),
            scheduled: plan.scheduled,
            shared: plan.shared,
            completed: 0,
            degraded: 0,
            failed: 0,
        };
        if !plan.scheduled {
            report.pairs.push(pair);
            continue;
        }

        let align_options = AlignOptions {
            threads: options.threads,
            checkpoint: options
                .checkpoint_dir
                .as_ref()
                .map(|dir| dir.join(format!("pair_{:03}_{:03}.journal", plan.a, plan.b))),
            executor: options.executor,
            queue_depth: options.queue_depth,
            max_retries: options.max_retries,
            stall_timeout_ms: options.stall_timeout_ms,
            fault_plan: options.fault_plan.clone(),
        };
        let provider;
        let tables: Option<&SeedTableFn<'_>> = if options.shared_index {
            provider = shared_index.provider(plan.a);
            Some(&provider)
        } else {
            None
        };
        let inner =
            align_assemblies_provided(&scaled, target, query, &align_options, pair_obs, tables)?;

        for outcome in &inner.pairs {
            match &outcome.outcome {
                RunOutcome::Completed => pair.completed += 1,
                RunOutcome::Degraded { .. } => pair.degraded += 1,
                RunOutcome::Failed { .. } => pair.failed += 1,
            }
        }
        report.workload.merge(&inner.workload);
        report.timings.merge(&inner.timings);
        report.counters.merge(&inner.counters);
        report.resumed_pairs += inner.resumed_pairs;
        merged.extend(inner.alignments.into_iter().map(|located| ManyAlignment {
            target_genome: target.name.clone(),
            target_chrom: located.target_chrom,
            query_genome: query.name.clone(),
            query_chrom: located.query_chrom,
            aligned: located.aligned,
        }));
        report.pairs.push(pair);
    }

    let (kept, sweep) = plane_sweep::plane_sweep(merged);
    report.alignments = kept;
    report.sweep = sweep;
    report.tables_built = shared_index.builds();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn genome_set() -> Vec<Assembly> {
        let mut rng = StdRng::seed_from_u64(31);
        let p1 = SyntheticPair::generate(6_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let p2 = SyntheticPair::generate(6_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let mut g0 = Assembly::new("g0");
        g0.push("chr", p1.target.sequence.clone());
        let mut g1 = Assembly::new("g1");
        g1.push("chr", p1.query.sequence.clone());
        let mut g2 = Assembly::new("g2");
        g2.push("chr", p2.target.sequence.clone());
        vec![g0, g1, g2]
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let params = WgaParams::darwin_wga();
        let genomes = genome_set();
        let err = align_many(&params, &genomes[..1], &ManyOptions::default());
        assert!(err.is_err(), "one genome must be rejected");
        let mut dup = genome_set();
        dup[1].name = "g0".into();
        assert!(align_many(&params, &dup, &ManyOptions::default()).is_err());
        let zero = ManyOptions {
            threads: 0,
            ..ManyOptions::default()
        };
        assert!(align_many(&params, &genomes, &zero).is_err());
        let knn_zero = ManyOptions {
            knn: Some(0),
            ..ManyOptions::default()
        };
        assert!(align_many(&params, &genomes, &knn_zero).is_err());
    }

    #[test]
    fn shared_and_per_pair_index_agree() {
        let params = WgaParams::darwin_wga();
        let genomes = genome_set();
        let shared = align_many(&params, &genomes, &ManyOptions::default()).unwrap();
        let per_pair = align_many(
            &params,
            &genomes,
            &ManyOptions {
                shared_index: false,
                ..ManyOptions::default()
            },
        )
        .unwrap();
        assert_eq!(shared.canonical_text(), per_pair.canonical_text());
        // The shared index really shared: only target sides need tables,
        // and g0 is the target of two pairs — two builds, not three.
        assert_eq!(shared.tables_built, 2);
        assert_eq!(per_pair.tables_built, 0);
    }

    #[test]
    fn canonical_text_shape() {
        let params = WgaParams::darwin_wga();
        let genomes = genome_set();
        let report = align_many(&params, &genomes, &ManyOptions::default()).unwrap();
        let text = report.canonical_text();
        assert_eq!(text.matches("genome\t").count(), 3);
        assert_eq!(text.matches("mpair\t").count(), 3);
        assert_eq!(text.matches("workload\t").count(), 1);
        assert_eq!(text.matches("sweep\t").count(), 1);
        assert!(report.summary().contains("3 genomes"));
    }
}
