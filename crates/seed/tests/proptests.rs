//! Property-based tests for seeding invariants.

use genome::{Base, Sequence};
use proptest::prelude::*;
use seed::{dsoft_seeds, DsoftParams, SeedPattern, SeedTable};

fn dna_strategy(min: usize, max: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(0u8..4, min..max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn table_lookup_positions_actually_match(target in dna_strategy(30, 300)) {
        let pattern = SeedPattern::exact(8);
        let table = SeedTable::build(&target, &pattern, usize::MAX);
        for pos in 0..target.len().saturating_sub(7) {
            if let Some(word) = pattern.extract(target.as_slice(), pos) {
                prop_assert!(table.lookup(word).contains(&(pos as u32)));
            }
        }
    }

    #[test]
    fn every_reported_hit_is_a_real_seed_match(
        target in dna_strategy(50, 400),
        query in dna_strategy(50, 400),
    ) {
        let pattern = SeedPattern::exact(10);
        let table = SeedTable::build(&target, &pattern, usize::MAX);
        let params = DsoftParams {
            transitions: false,
            ..DsoftParams::default()
        };
        let result = dsoft_seeds(&table, &query, &params);
        for hit in &result.hits {
            let tw = pattern.extract(target.as_slice(), hit.target_pos);
            let qw = pattern.extract(query.as_slice(), hit.query_pos);
            prop_assert!(tw.is_some() && qw.is_some());
            prop_assert_eq!(tw, qw, "hit {:?} is not a word match", hit);
        }
    }

    #[test]
    fn transition_hits_are_within_one_transition(
        target in dna_strategy(50, 300),
        query in dna_strategy(50, 300),
    ) {
        let pattern = SeedPattern::exact(10);
        let table = SeedTable::build(&target, &pattern, usize::MAX);
        let params = DsoftParams {
            transitions: true,
            ..DsoftParams::default()
        };
        let result = dsoft_seeds(&table, &query, &params);
        for hit in &result.hits {
            let mut transitions = 0;
            let mut transversions = 0;
            for k in 0..10 {
                let (a, b) = (target.as_slice()[hit.target_pos + k], query.as_slice()[hit.query_pos + k]);
                if a.is_transition(b) {
                    transitions += 1;
                } else if a != b {
                    transversions += 1;
                }
            }
            prop_assert_eq!(transversions, 0);
            prop_assert!(transitions <= 1, "{} transitions", transitions);
        }
    }

    #[test]
    fn threshold_monotonically_prunes(
        target in dna_strategy(100, 400),
    ) {
        // Query = target guarantees hits exist.
        let pattern = SeedPattern::exact(8);
        let table = SeedTable::build(&target, &pattern, usize::MAX);
        let mut prev = usize::MAX;
        for threshold in [1u32, 2, 4, 16, 64] {
            let params = DsoftParams {
                threshold,
                transitions: false,
                ..DsoftParams::default()
            };
            let n = dsoft_seeds(&table, &target, &params).hits.len();
            prop_assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn self_alignment_always_seeds(target in dna_strategy(40, 300)) {
        let pattern = SeedPattern::exact(12);
        let table = SeedTable::build(&target, &pattern, usize::MAX);
        let result = dsoft_seeds(&table, &target, &DsoftParams::default());
        if target.len() >= 12 {
            prop_assert!(!result.hits.is_empty());
            // The main diagonal must be represented.
            prop_assert!(result.hits.iter().any(|h| h.diagonal() == 0));
        }
    }

    #[test]
    fn pattern_word_respects_dont_care(pattern_str in "1[01]{0,12}1", pos in 0usize..4) {
        let Ok(pattern) = pattern_str.parse::<SeedPattern>() else {
            return Ok(());
        };
        // Two windows differing only at don't-care positions share a word.
        let mut rng_seq: Vec<Base> = (0..pattern.span() + pos + 4)
            .map(|i| Base::from_code((i % 4) as u8))
            .collect();
        let w1 = pattern.extract(&rng_seq, pos);
        for off in 0..pattern.span() {
            if !pattern.sampled_offsets().contains(&off) {
                rng_seq[pos + off] = rng_seq[pos + off].complement();
            }
        }
        let w2 = pattern.extract(&rng_seq, pos);
        prop_assert_eq!(w1, w2);
    }
}
