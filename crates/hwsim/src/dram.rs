//! DRAM bandwidth and power model.
//!
//! The paper provisions the ASIC so that DRAM bandwidth is the bottleneck
//! (§VI-A, "The performance of this chip is limited by the available
//! memory bandwidth") with four DDR4-2400 channels; DRAMPower supplied
//! the 3.1 W estimate of Table IV. We model channels as a flat aggregate
//! bandwidth and expose the min(compute, memory) arbitration.

use serde::{Deserialize, Serialize};

/// A DRAM subsystem: some number of identical channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Peak bandwidth per channel, bytes/second.
    pub bandwidth_per_channel: f64,
    /// Total DRAM power, watts.
    pub power_w: f64,
}

impl DramConfig {
    /// The ASIC's memory system: 4 × DDR4-2400 x8 (≈19.2 GB/s each),
    /// 3.1 W total (Table IV).
    pub fn asic_ddr4() -> DramConfig {
        DramConfig {
            channels: 4,
            bandwidth_per_channel: 19.2e9,
            power_w: 3.10,
        }
    }

    /// The FPGA instance's single 64 GB DDR4 DIMM.
    pub fn fpga_ddr4() -> DramConfig {
        DramConfig {
            channels: 1,
            bandwidth_per_channel: 19.2e9,
            power_w: 4.0,
        }
    }

    /// Aggregate peak bandwidth, bytes/second.
    pub fn total_bandwidth(&self) -> f64 {
        self.channels as f64 * self.bandwidth_per_channel
    }

    /// Caps a compute-bound tile throughput by memory bandwidth.
    ///
    /// # Examples
    ///
    /// ```
    /// let dram = hwsim::dram::DramConfig::asic_ddr4();
    /// // 1 KB/tile: memory alone would allow 76.8M tiles/s.
    /// let capped = dram.cap_throughput(200.0e6, 1024.0);
    /// assert!(capped < 80.0e6);
    /// ```
    pub fn cap_throughput(&self, compute_tiles_per_s: f64, bytes_per_tile: f64) -> f64 {
        if bytes_per_tile <= 0.0 {
            return compute_tiles_per_s;
        }
        compute_tiles_per_s.min(self.total_bandwidth() / bytes_per_tile)
    }

    /// Whether a demand of `bytes_per_second` saturates the memory system.
    pub fn is_bottleneck(&self, bytes_per_second: f64) -> bool {
        bytes_per_second >= self.total_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_bandwidth() {
        let d = DramConfig::asic_ddr4();
        assert!((d.total_bandwidth() - 76.8e9).abs() < 1e6);
    }

    #[test]
    fn cap_passes_through_when_memory_is_ample() {
        let d = DramConfig::asic_ddr4();
        assert_eq!(d.cap_throughput(1.0e6, 100.0), 1.0e6);
    }

    #[test]
    fn cap_limits_when_memory_is_scarce() {
        let d = DramConfig::fpga_ddr4();
        // 1 MB per tile: only ~18K tiles/s possible.
        let capped = d.cap_throughput(1.0e6, 1.0e6);
        assert!((capped - 19.2e3).abs() < 1.0);
        assert!(d.is_bottleneck(20.0e9));
        assert!(!d.is_bottleneck(1.0e9));
    }

    #[test]
    fn zero_bytes_never_caps() {
        let d = DramConfig::asic_ddr4();
        assert_eq!(d.cap_throughput(5.0, 0.0), 5.0);
    }
}
