//! Run reports: alignments, workload counters, stage timings.

use align::Alignment;
use hwsim::Workload;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Query strand an alignment was found on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Strand {
    /// Forward (query as given).
    #[default]
    Forward,
    /// Reverse complement of the query; alignment coordinates refer to
    /// the reverse-complemented sequence.
    Reverse,
}

/// One output alignment with strand information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WgaAlignment {
    /// The alignment (query coordinates are on `strand`).
    pub alignment: Alignment,
    /// Query strand.
    pub strand: Strand,
}

/// Wall-clock time spent per pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Seeding (table build + D-SOFT).
    pub seeding: Duration,
    /// Filtering (all tiles).
    pub filtering: Duration,
    /// Extension (all anchors).
    pub extension: Duration,
}

impl StageTimings {
    /// Total of all stages.
    pub fn total(&self) -> Duration {
        self.seeding + self.filtering + self.extension
    }

    /// Merges another timing record (summing stages).
    pub fn merge(&mut self, other: &StageTimings) {
        self.seeding += other.seeding;
        self.filtering += other.filtering;
        self.extension += other.extension;
    }
}

/// Which resource budget a [`RunEvent::BudgetExceeded`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetKind {
    /// [`crate::config::ResourceBudget::max_seed_hits`] (per strand).
    SeedHits,
    /// [`crate::config::ResourceBudget::max_filter_tiles`] (per pair).
    FilterTiles,
    /// [`crate::config::ResourceBudget::max_extension_cells`] (per pair).
    ExtensionCells,
    /// [`crate::config::ResourceBudget::deadline`] (per pair; the
    /// `limit`/`observed` fields are milliseconds).
    Deadline,
}

/// Which pipeline stage an event occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// Seed-table lookup / D-SOFT banding.
    Seeding,
    /// Gapped or ungapped filtering.
    Filtering,
    /// GACT-X / Y-drop extension.
    Extension,
}

/// One noteworthy event of a pipeline run: graceful degradation instead
/// of unbounded work (budgets) or process death (worker panics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunEvent {
    /// A resource budget tripped; the stage truncated its work
    /// deterministically and the run continued.
    BudgetExceeded {
        /// Which budget tripped.
        budget: BudgetKind,
        /// Stage that was truncated.
        stage: StageKind,
        /// The configured limit (milliseconds for
        /// [`BudgetKind::Deadline`]).
        limit: u64,
        /// What the stage observed / would have used when it tripped.
        observed: u64,
    },
    /// A parallel worker batch panicked twice (once in a worker, once in
    /// the serial retry) and its items were dropped from the result.
    BatchFailed {
        /// Stage the batch belonged to.
        stage: StageKind,
        /// Batch index within the stage dispatch.
        batch: usize,
        /// Number of work items the batch carried.
        items: u64,
        /// The panic message.
        message: String,
    },
}

/// Per-chromosome-pair status of an assembly-scale run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The pair ran to completion with no degradation.
    Completed,
    /// The pair produced results, but budgets tripped and/or worker
    /// batches failed along the way.
    Degraded {
        /// What was truncated or dropped.
        events: Vec<RunEvent>,
    },
    /// The pair produced no results (its worker panicked outside any
    /// recoverable scope); the rest of the run continued.
    Failed {
        /// The panic/error message.
        error: String,
    },
}

impl RunOutcome {
    /// Whether the pair contributed results (completed or degraded).
    pub fn has_results(&self) -> bool {
        !matches!(self, RunOutcome::Failed { .. })
    }
}

/// One chromosome pair's outcome within an
/// [`crate::genome_pipeline::AssemblyReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairOutcome {
    /// Target chromosome name.
    pub target_chrom: String,
    /// Query chromosome name.
    pub query_chrom: String,
    /// What happened to the pair.
    pub outcome: RunOutcome,
}

/// Funnel counters: how many candidates each stage saw and passed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunnelCounters {
    /// Raw seed hits before diagonal-band deduplication.
    pub raw_seed_hits: u64,
    /// Seed hits handed to the filter (one per qualifying band).
    pub hits_filtered: u64,
    /// DP cells spent in the gapped filter. Absent (zero) in records
    /// serialized before this field existed.
    #[serde(default)]
    pub filter_cells: u64,
    /// Anchors that passed the filter threshold.
    pub anchors_passed: u64,
    /// Anchors absorbed into existing alignments (not extended).
    pub anchors_absorbed: u64,
    /// Alignments surviving the extension threshold.
    pub alignments_kept: u64,
    /// Faults injected into this pair by `--fault-plan` (zero outside
    /// chaos runs; absent in records serialized before the field).
    #[serde(default)]
    pub faults_injected: u64,
    /// Supervised retries this pair consumed recovering from injected
    /// or real transient failures.
    #[serde(default)]
    pub retries: u64,
    /// Watchdog stall escalations attributed to this pair.
    #[serde(default)]
    pub stalls_detected: u64,
    /// Speculative extensions computed by shard helpers but discarded
    /// unconsumed — the anchor was absorbed into an earlier chain or
    /// truncated by budget before the serial commit loop reached it.
    /// Thread-schedule dependent, so never part of canonical output;
    /// absent (zero) in records serialized before the field.
    #[serde(default)]
    pub spec_discard: u64,
}

impl FunnelCounters {
    /// Copy with [`FunnelCounters::spec_discard`] cleared — the equality
    /// basis for cross-thread determinism checks. Speculation waste is
    /// the one field that legitimately varies with scheduling; every
    /// other counter must match a serial run exactly.
    pub fn deterministic_view(&self) -> FunnelCounters {
        FunnelCounters {
            spec_discard: 0,
            ..*self
        }
    }

    /// Merges another counter record.
    pub fn merge(&mut self, other: &FunnelCounters) {
        self.raw_seed_hits += other.raw_seed_hits;
        self.hits_filtered += other.hits_filtered;
        self.filter_cells += other.filter_cells;
        self.anchors_passed += other.anchors_passed;
        self.anchors_absorbed += other.anchors_absorbed;
        self.alignments_kept += other.alignments_kept;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.stalls_detected += other.stalls_detected;
        self.spec_discard += other.spec_discard;
    }
}

/// Complete output of one pipeline run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WgaReport {
    /// Output alignments, best score first.
    pub alignments: Vec<WgaAlignment>,
    /// Hardware-relevant workload (feeds the `hwsim` models).
    pub workload: Workload,
    /// Stage wall-clock timings of this (software) run.
    pub timings: StageTimings,
    /// Stage funnel counters.
    pub counters: FunnelCounters,
    /// Degradation events (tripped budgets, failed worker batches), in
    /// the order they occurred. Empty for a clean run.
    #[serde(default)]
    pub events: Vec<RunEvent>,
}

impl WgaReport {
    /// Whether any budget tripped or any worker batch failed.
    pub fn is_degraded(&self) -> bool {
        !self.events.is_empty()
    }

    /// The run's [`RunOutcome`]: `Completed` when clean, `Degraded`
    /// carrying the event list otherwise.
    pub fn outcome(&self) -> RunOutcome {
        if self.events.is_empty() {
            RunOutcome::Completed
        } else {
            RunOutcome::Degraded {
                events: self.events.clone(),
            }
        }
    }

    /// Forward-strand alignments only (what the ground-truth metrics of
    /// the synthetic pairs evaluate).
    pub fn forward_alignments(&self) -> Vec<Alignment> {
        self.alignments
            .iter()
            .filter(|a| a.strand == Strand::Forward)
            .map(|a| a.alignment.clone())
            .collect()
    }

    /// Total matched base pairs across all output alignments.
    pub fn total_matches(&self) -> u64 {
        self.alignments.iter().map(|a| a.alignment.matches()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::{AlignOp, Cigar};

    #[test]
    fn report_helpers() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 10);
        let report = WgaReport {
            alignments: vec![
                WgaAlignment {
                    alignment: Alignment::new(0, 0, c.clone(), 900),
                    strand: Strand::Forward,
                },
                WgaAlignment {
                    alignment: Alignment::new(50, 50, c, 900),
                    strand: Strand::Reverse,
                },
            ],
            ..WgaReport::default()
        };
        assert_eq!(report.forward_alignments().len(), 1);
        assert_eq!(report.total_matches(), 20);
    }

    #[test]
    fn timings_total_and_merge() {
        let mut t = StageTimings {
            seeding: Duration::from_secs(1),
            filtering: Duration::from_secs(2),
            extension: Duration::from_secs(3),
        };
        assert_eq!(t.total(), Duration::from_secs(6));
        t.merge(&t.clone());
        assert_eq!(t.total(), Duration::from_secs(12));
    }

    #[test]
    fn outcome_reflects_events() {
        let mut report = WgaReport::default();
        assert!(!report.is_degraded());
        assert_eq!(report.outcome(), RunOutcome::Completed);
        report.events.push(RunEvent::BudgetExceeded {
            budget: BudgetKind::FilterTiles,
            stage: StageKind::Filtering,
            limit: 10,
            observed: 25,
        });
        assert!(report.is_degraded());
        match report.outcome() {
            RunOutcome::Degraded { events } => assert_eq!(events.len(), 1),
            other => panic!("expected degraded, got {other:?}"),
        }
        assert!(report.outcome().has_results());
        let failed = RunOutcome::Failed {
            error: "worker panicked".into(),
        };
        assert!(!failed.has_results());
    }

    #[test]
    fn counters_merge() {
        let mut a = FunnelCounters {
            raw_seed_hits: 5,
            hits_filtered: 4,
            filter_cells: 400,
            anchors_passed: 3,
            anchors_absorbed: 1,
            alignments_kept: 2,
            faults_injected: 2,
            retries: 1,
            stalls_detected: 1,
            spec_discard: 3,
        };
        a.merge(&a.clone());
        assert_eq!(a.raw_seed_hits, 10);
        assert_eq!(a.filter_cells, 800);
        assert_eq!(a.alignments_kept, 4);
        assert_eq!(a.faults_injected, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.stalls_detected, 2);
        assert_eq!(a.spec_discard, 6);
    }
}
