//! Closure fixture: the call graph merges closure bodies into the
//! enclosing fn, so `helper` is reachable from `execute` even though
//! the call sits inside `|| …`, and the closure is not its own node.

pub fn execute() {
    let worker = || helper();
    worker();
}

fn helper() {
    inner();
}

fn inner() {}
