//! Cycle model of the Banded Smith-Waterman filter array (§IV).
//!
//! The BSW array is "a subset of the GACT-X array": no traceback, fixed
//! band. Per stripe `n` the start and stop columns follow equations 4–5
//! of the paper, so a stripe spans roughly `Npe + 2B` columns and a tile
//! of `T_f` bases takes `⌈T_f/Npe⌉` stripes.

use crate::systolic::ArrayConfig;
use serde::{Deserialize, Serialize};

/// Geometry of one BSW filter tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BswTileGeometry {
    /// Tile size `T_f` in bases (target and query window).
    pub tile_size: usize,
    /// Band half-width `B`.
    pub band: usize,
}

impl BswTileGeometry {
    /// The paper's defaults: `T_f = 320`, `B = 32` (Table IIb).
    pub fn darwin_wga() -> BswTileGeometry {
        BswTileGeometry {
            tile_size: 320,
            band: 32,
        }
    }

    /// Start column of stripe `n` (1-based), equation 4:
    /// `jstart = max(0, (n−1)·Npe + 1 − B)`.
    pub fn jstart(&self, stripe: u64, num_pe: usize) -> u64 {
        ((stripe - 1) * num_pe as u64 + 1).saturating_sub(self.band as u64)
    }

    /// Stop column of stripe `n` (1-based), equation 5:
    /// `jstop = min(rlen − 1, n·Npe + B)`.
    pub fn jstop(&self, stripe: u64, num_pe: usize) -> u64 {
        (stripe * num_pe as u64 + self.band as u64).min(self.tile_size as u64 - 1)
    }

    /// Cycles one array needs for one tile.
    pub fn cycles_per_tile(&self, array: &ArrayConfig) -> u64 {
        array.validate();
        let stripes = array.stripes(self.tile_size as u64);
        let mut cycles = array.tile_overhead_cycles;
        for n in 1..=stripes {
            let cols = self.jstop(n, array.num_pe) - self.jstart(n, array.num_pe) + 1;
            cycles += array.stripe_cycles(cols);
        }
        cycles
    }

    /// DRAM bytes fetched per tile (both sequence windows, one byte per
    /// base as stored in DRAM).
    pub fn bytes_per_tile(&self) -> u64 {
        2 * self.tile_size as u64
    }
}

impl Default for BswTileGeometry {
    fn default() -> Self {
        BswTileGeometry::darwin_wga()
    }
}

/// A bank of identical BSW arrays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BswBank {
    /// Per-array configuration.
    pub array: ArrayConfig,
    /// Number of arrays operating in parallel.
    pub num_arrays: usize,
    /// Tile geometry.
    pub geometry: BswTileGeometry,
}

impl BswBank {
    /// The paper's FPGA configuration: 50 arrays × 32 PEs at 150 MHz.
    pub fn fpga() -> BswBank {
        BswBank {
            array: ArrayConfig::fpga(),
            num_arrays: 50,
            geometry: BswTileGeometry::darwin_wga(),
        }
    }

    /// The paper's ASIC configuration: 64 arrays × 64 PEs at 1 GHz.
    pub fn asic() -> BswBank {
        BswBank {
            array: ArrayConfig::asic(),
            num_arrays: 64,
            geometry: BswTileGeometry::darwin_wga(),
        }
    }

    /// Aggregate filter throughput in tiles/second (compute-bound).
    ///
    /// # Examples
    ///
    /// ```
    /// // The paper reports ~6.25M tiles/s on the FPGA and ~70M on the ASIC;
    /// // the model lands in the same range from first principles.
    /// let fpga = hwsim::bsw_array::BswBank::fpga().tiles_per_second();
    /// assert!((4.0e6..9.0e6).contains(&fpga));
    /// let asic = hwsim::bsw_array::BswBank::asic().tiles_per_second();
    /// assert!((50.0e6..90.0e6).contains(&asic));
    /// ```
    pub fn tiles_per_second(&self) -> f64 {
        let cycles = self.geometry.cycles_per_tile(&self.array);
        self.num_arrays as f64 * self.array.freq_hz / cycles as f64
    }

    /// Total cycles *one* array would spend filtering `tiles` tiles —
    /// the modeled-cycle figure the observability layer reports for the
    /// BSW stage. Divide by `num_arrays` for bank wall-clock cycles.
    pub fn cycles_for_workload(&self, tiles: u64) -> u64 {
        tiles * self.geometry.cycles_per_tile(&self.array)
    }

    /// DRAM bandwidth demanded at full throughput, bytes/second.
    pub fn bandwidth_demand(&self) -> f64 {
        self.tiles_per_second() * self.geometry.bytes_per_tile() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_columns_follow_equations() {
        let g = BswTileGeometry::darwin_wga();
        // Stripe 1 with Npe=32, B=32: jstart = max(0, 1-32) = 0,
        // jstop = min(319, 32+32) = 64.
        assert_eq!(g.jstart(1, 32), 0);
        assert_eq!(g.jstop(1, 32), 64);
        // Middle stripe: ~Npe + 2B wide.
        assert_eq!(g.jstart(5, 32), 97);
        assert_eq!(g.jstop(5, 32), 192);
        // Last stripe clipped at the tile edge.
        assert_eq!(g.jstop(10, 32), 319);
    }

    #[test]
    fn fpga_tile_cycles_in_expected_range() {
        let g = BswTileGeometry::darwin_wga();
        let cycles = g.cycles_per_tile(&ArrayConfig::fpga());
        // 10 stripes × (~96 cols + 32 fill) + overhead ≈ 1.3K cycles.
        assert!((1_000..1_700).contains(&cycles), "{cycles}");
    }

    #[test]
    fn fpga_throughput_near_paper() {
        // Paper: 50 arrays → 6.25M tiles/s. Accept a generous band; the
        // *ratios* between platforms are what the tables use.
        let tps = BswBank::fpga().tiles_per_second();
        assert!((4.0e6..9.0e6).contains(&tps), "{tps}");
    }

    #[test]
    fn asic_throughput_near_paper() {
        // Paper: 70M tiles/s for 64 arrays at 1 GHz.
        let tps = BswBank::asic().tiles_per_second();
        assert!((5.0e7..9.0e7).contains(&tps), "{tps}");
    }

    #[test]
    fn bandwidth_demand_scales_with_tile_bytes() {
        let bank = BswBank::fpga();
        let bw = bank.bandwidth_demand();
        // Paper quotes ~2.1 GB/s for the FPGA BSW stage.
        assert!((1.0e9..8.0e9).contains(&bw), "{bw}");
    }

    #[test]
    fn workload_cycles_are_tiles_times_tile_cycles() {
        let bank = BswBank::fpga();
        let per_tile = bank.geometry.cycles_per_tile(&bank.array);
        assert_eq!(bank.cycles_for_workload(0), 0);
        assert_eq!(bank.cycles_for_workload(1000), 1000 * per_tile);
    }

    #[test]
    fn more_arrays_scale_linearly() {
        let mut bank = BswBank::fpga();
        let one = BswBank {
            num_arrays: 1,
            ..bank
        }
        .tiles_per_second();
        bank.num_arrays = 10;
        assert!((bank.tiles_per_second() / one - 10.0).abs() < 1e-9);
    }
}
