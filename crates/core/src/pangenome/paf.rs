//! PAF (Pairwise mApping Format) emission for the many-genome report.
//!
//! One line per surviving alignment, 12 mandatory tab-separated
//! columns, minimap2 conventions: query first, all coordinates 0-based
//! half-open **on the forward strand** of each sequence. The aligner
//! stores reverse-strand alignments against the reverse-complemented
//! query, so `-` lines flip their query interval to forward-strand
//! coordinates (`qlen - end, qlen - start`); the canonical report keeps
//! the raw orientation, and the round-trip test in `tests/paf_golden.rs`
//! pins the two views against each other. Sequence names are
//! `<genome>.<chromosome>` so one PAF spans the whole genome set
//! without name collisions.

use super::{ManyAlignment, ManyReport};
use crate::report::Strand;
use genome::assembly::Assembly;
use std::collections::BTreeMap;

/// Mapping quality emitted for every line: the pipeline scores but does
/// not yet rank competing placements, and PAF reserves 255 for
/// "missing".
const MAPQ: u32 = 255;

/// Renders the report's (already deduplicated) alignments as PAF text,
/// in canonical report order. `genomes` supplies sequence lengths;
/// alignments naming a genome or chromosome outside the set are
/// skipped (unreachable when the report came from the same set).
pub fn paf_text(report: &ManyReport, genomes: &[Assembly]) -> String {
    let mut lengths: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for genome in genomes {
        for chrom in genome.chromosomes() {
            lengths.insert((genome.name.as_str(), chrom.name.as_str()), chrom.sequence.len());
        }
    }
    let mut out = String::new();
    for alignment in &report.alignments {
        let t_len = lengths.get(&(
            alignment.target_genome.as_str(),
            alignment.target_chrom.as_str(),
        ));
        let q_len = lengths.get(&(
            alignment.query_genome.as_str(),
            alignment.query_chrom.as_str(),
        ));
        if let (Some(&t_len), Some(&q_len)) = (t_len, q_len) {
            out.push_str(&paf_line(alignment, t_len, q_len));
            out.push('\n');
        }
    }
    out
}

fn paf_line(a: &ManyAlignment, t_len: usize, q_len: usize) -> String {
    let aln = &a.aligned.alignment;
    let (strand, q_start, q_end) = match a.aligned.strand {
        Strand::Forward => ('+', aln.query_start, aln.query_end),
        // Alignment coordinates are on the reverse complement; PAF
        // wants the forward strand, which mirrors the interval.
        Strand::Reverse => (
            '-',
            q_len.saturating_sub(aln.query_end),
            q_len.saturating_sub(aln.query_start),
        ),
    };
    format!(
        "{}.{}\t{}\t{}\t{}\t{}\t{}.{}\t{}\t{}\t{}\t{}\t{}\t{}",
        a.query_genome,
        a.query_chrom,
        q_len,
        q_start,
        q_end,
        strand,
        a.target_genome,
        a.target_chrom,
        t_len,
        aln.target_start,
        aln.target_end,
        aln.matches(),
        aln.cigar.len(),
        MAPQ
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::WgaAlignment;
    use align::alignment::Alignment;
    use align::cigar::{AlignOp, Cigar};

    fn genome(name: &str, chrom: &str, len: usize) -> Assembly {
        let mut a = Assembly::new(name);
        let seq: genome::Sequence = "ACGT".repeat(len / 4).parse().unwrap();
        a.push(chrom, seq);
        a
    }

    fn alignment(strand: Strand) -> ManyAlignment {
        let mut cigar = Cigar::new();
        cigar.push(AlignOp::Match, 10);
        cigar.push(AlignOp::Delete, 2);
        cigar.push(AlignOp::Match, 10);
        ManyAlignment {
            target_genome: "ga".into(),
            target_chrom: "chrI".into(),
            query_genome: "gb".into(),
            query_chrom: "chr1".into(),
            aligned: WgaAlignment {
                alignment: Alignment::new(8, 4, cigar, 77),
                strand,
            },
        }
    }

    fn report_with(alignments: Vec<ManyAlignment>) -> ManyReport {
        ManyReport {
            alignments,
            ..ManyReport::default()
        }
    }

    #[test]
    fn forward_line_has_twelve_columns_and_raw_coords() {
        let genomes = vec![genome("ga", "chrI", 100), genome("gb", "chr1", 80)];
        let text = paf_text(&report_with(vec![alignment(Strand::Forward)]), &genomes);
        let cols: Vec<&str> = text.trim_end().split('\t').collect();
        assert_eq!(cols.len(), 12, "{text:?}");
        assert_eq!(cols[0], "gb.chr1");
        assert_eq!(cols[1], "80");
        assert_eq!(cols[2], "4");
        assert_eq!(cols[3], "24"); // 4 + 20 query-consuming ops
        assert_eq!(cols[4], "+");
        assert_eq!(cols[5], "ga.chrI");
        assert_eq!(cols[6], "100");
        assert_eq!(cols[7], "8");
        assert_eq!(cols[8], "30"); // 8 + 22 target-consuming ops
        assert_eq!(cols[11], "255");
    }

    #[test]
    fn reverse_line_flips_query_to_forward_strand() {
        let genomes = vec![genome("ga", "chrI", 100), genome("gb", "chr1", 80)];
        let text = paf_text(&report_with(vec![alignment(Strand::Reverse)]), &genomes);
        let cols: Vec<&str> = text.trim_end().split('\t').collect();
        assert_eq!(cols[4], "-");
        // Raw reverse-complement interval [4, 24) mirrors to [56, 76).
        assert_eq!(cols[2], "56");
        assert_eq!(cols[3], "76");
        // Target side is unaffected by strand.
        assert_eq!(cols[7], "8");
        assert_eq!(cols[8], "30");
    }

    #[test]
    fn unknown_names_are_skipped() {
        let genomes = vec![genome("ga", "chrI", 100)];
        let text = paf_text(&report_with(vec![alignment(Strand::Forward)]), &genomes);
        assert!(text.is_empty());
    }
}
