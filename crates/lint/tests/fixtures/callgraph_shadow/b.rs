//! Shadowed-name fixture, file 2 of 2.

pub fn normalize() {
    other();
}

fn other() {}
