//! §VI-B noise analysis — false-positive rate against a shuffled genome.
//!
//! The paper builds a "random" target by shuffling the 2-mers of ce11
//! (preserving dinucleotide statistics), aligns cb4 against it, and
//! counts every matched base pair as a false positive: FPR 0.0007% for
//! Darwin-WGA at Hf=4000 vs 0.0002% for LASTZ — and a dramatic 1.48% if
//! Hf is lowered to LASTZ's default 3000. The experiment is repeated 3
//! times with different shuffles.
//!
//! Run with: `cargo run --release -p wga-bench --bin noise_fpr`
//! Optional args: `[genome_len] [replicates]` (defaults 60000 3).

use chain::metrics::false_positive_rate;
use genome::evolve::SpeciesPair;
use genome::shuffle::shuffle_dinucleotides;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wga_bench::{paper_pair, run_and_measure};
use wga_core::config::WgaParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let genome_len: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let replicates: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let sp = &SpeciesPair::paper_pairs()[0]; // ce11-cb4, as in the paper
    let mut pair = paper_pair(sp, genome_len, 77);
    println!(
        "Noise analysis on the {} stand-in ({genome_len} bp, {replicates} shuffles)\n",
        sp.name()
    );

    let configs = [
        ("Darwin-WGA Hf=4000", WgaParams::darwin_wga()),
        (
            "Darwin-WGA Hf=3000",
            WgaParams::darwin_wga().with_filter_threshold(3000),
        ),
        ("LASTZ-like", WgaParams::lastz_baseline()),
    ];

    println!(
        "{:<20} {:>14} {:>16} {:>12}",
        "pipeline", "real matched", "shuffled matched", "FPR"
    );
    for (label, params) in configs {
        let real = run_and_measure(params.clone(), &pair).matched;
        let mut shuffled_total = 0u64;
        for rep in 0..replicates {
            let mut rng = StdRng::seed_from_u64(500 + rep);
            let shuffled_target = shuffle_dinucleotides(&pair.target.sequence, &mut rng);
            let original = std::mem::replace(&mut pair.target.sequence, shuffled_target);
            shuffled_total += run_and_measure(params.clone(), &pair).matched;
            pair.target.sequence = original;
        }
        let shuffled_avg = shuffled_total / replicates;
        let fpr = false_positive_rate(real, shuffled_avg);
        println!(
            "{:<20} {:>14} {:>16} {:>11.4}%",
            label,
            real,
            shuffled_avg,
            fpr * 100.0
        );
    }

    println!("\nPaper: Darwin-WGA Hf=4000 FPR 0.0007%, LASTZ 0.0002%, Darwin-WGA Hf=3000 1.48%.");
    println!("Expected shape: FPR tiny at Hf=4000 and for LASTZ; orders of magnitude larger");
    println!("when the gapped-filter threshold is lowered to 3000 — the reason the paper's");
    println!("default adopts Hf=4000 (§VI-B).");

    // The maximum random-alignment score grows with log(search space); the
    // paper's genomes span a ~1e16-cell space where random scores exceed
    // 3000, while this laptop-scale run spans ~1e9 where they cannot. To
    // exhibit the *mechanism* at this scale we sweep the thresholds down:
    // the gapped filter, which tolerates indels, admits spurious chains
    // well before the ungapped filter does.
    println!("\nThreshold sweep (both Hf and He set to the sweep value, shuffled target):");
    println!(
        "{:<12} {:>22} {:>22}",
        "threshold", "gapped false bp", "ungapped false bp"
    );
    let mut rng = StdRng::seed_from_u64(900);
    let shuffled_target = shuffle_dinucleotides(&pair.target.sequence, &mut rng);
    let original = std::mem::replace(&mut pair.target.sequence, shuffled_target);
    for threshold in [1200i64, 1500, 1800, 2200, 2600, 3000] {
        let mut gapped = WgaParams::darwin_wga().with_filter_threshold(threshold);
        gapped.extension_threshold = threshold;
        let mut ungapped = WgaParams::lastz_baseline().with_filter_threshold(threshold);
        ungapped.extension_threshold = threshold;
        let g = run_and_measure(gapped, &pair).matched;
        let u = run_and_measure(ungapped, &pair).matched;
        println!("{:<12} {:>22} {:>22}", threshold, g, u);
    }
    pair.target.sequence = original;
    println!("\nExpected shape: spurious matched bp appear for the gapped filter at a higher");
    println!("threshold than for the ungapped filter — the scale-reduced analogue of the");
    println!("paper's 1.48% at Hf=3000.");
}
