//! CLI for `wga-lint`.
//!
//! ```text
//! cargo run -p wga-lint                         # all rules, repo root
//! cargo run -p wga-lint -- --rule panics        # one rule (panic_audit.sh)
//! cargo run -p wga-lint -- --json out.json      # report path override
//! ```
//!
//! Exit codes: 0 clean, 1 non-waived violations, 2 usage/IO/manifest
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use wga_lint::{config::LintError, report, Config, RULES};

struct Args {
    root: PathBuf,
    manifest: Option<PathBuf>,
    rules: Vec<&'static str>,
    json: Option<PathBuf>,
    no_json: bool,
}

const USAGE: &str = "wga-lint [--root DIR] [--manifest PATH] [--rule NAME]... \
[--json PATH] [--no-json]\n  rules: panics, determinism, taint, deadlock, hot-loop, \
unsafe (default: all)";

fn parse_args() -> Result<Args, LintError> {
    let mut args = Args {
        root: PathBuf::from("."),
        manifest: None,
        rules: Vec::new(),
        json: None,
        no_json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => args.root = PathBuf::from(v),
                None => return Err(LintError::Usage(USAGE.into())),
            },
            "--manifest" => match it.next() {
                Some(v) => args.manifest = Some(PathBuf::from(v)),
                None => return Err(LintError::Usage(USAGE.into())),
            },
            "--rule" => match it.next() {
                Some(v) => match RULES.iter().find(|r| **r == v) {
                    Some(r) => args.rules.push(r),
                    None => {
                        return Err(LintError::Usage(format!(
                            "unknown rule `{}`\n{}",
                            v, USAGE
                        )));
                    }
                },
                None => return Err(LintError::Usage(USAGE.into())),
            },
            "--json" => match it.next() {
                Some(v) => args.json = Some(PathBuf::from(v)),
                None => return Err(LintError::Usage(USAGE.into())),
            },
            "--no-json" => args.no_json = true,
            "--help" | "-h" => return Err(LintError::Usage(USAGE.into())),
            other => {
                return Err(LintError::Usage(format!(
                    "unknown flag `{}`\n{}",
                    other, USAGE
                )));
            }
        }
    }
    if args.rules.is_empty() {
        args.rules = RULES.to_vec();
    }
    Ok(args)
}

fn run() -> Result<bool, LintError> {
    let args = parse_args()?;
    let manifest_path = args
        .manifest
        .clone()
        .unwrap_or_else(|| args.root.join("scripts/wga-lint.manifest"));
    let text = std::fs::read_to_string(&manifest_path).map_err(|e| LintError::Io {
        path: manifest_path,
        msg: e.to_string(),
    })?;
    let cfg = Config::parse(args.root.clone(), &text)?;
    let analysis = wga_lint::run(&cfg, &args.rules)?;
    print!("{}", report::human(&analysis));
    if !args.no_json {
        let path = args
            .json
            .unwrap_or_else(|| PathBuf::from("lint_report.json"));
        std::fs::write(&path, report::json(&analysis)).map_err(|e| LintError::Io {
            path,
            msg: e.to_string(),
        })?;
    }
    Ok(analysis.total_violations() == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::from(0),
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("wga-lint: {}", e);
            ExitCode::from(2)
        }
    }
}
