//! Pipeline configuration (Table II).

use align::gactx::TilingParams;
use genome::{GapPenalties, SubstitutionMatrix};
use seed::{DsoftParams, SeedPattern};
use serde::{Deserialize, Serialize};

/// Gapped (BSW) filter parameters — Darwin-WGA's filtering stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GappedFilterParams {
    /// Filter tile size `T_f`.
    pub tile_size: usize,
    /// Band half-width `B`.
    pub band: usize,
    /// Filter threshold `H_f`: anchors scoring below are discarded.
    pub threshold: i64,
}

impl Default for GappedFilterParams {
    /// Table IIb with the `H_f` correction of §VI-B: `T_f = 320`,
    /// `B = 32`, `H_f = 4000` (the paper's table prints 3000 but the text
    /// adopts 4000 after the false-positive analysis).
    fn default() -> Self {
        GappedFilterParams {
            tile_size: 320,
            band: 32,
            threshold: 4000,
        }
    }
}

/// Ungapped (LASTZ-style) filter parameters — the baseline's filtering
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UngappedFilterParams {
    /// X-drop value for the diagonal extension.
    pub xdrop: i32,
    /// Filter threshold (LASTZ default 3000 — "equivalent of at least 30
    /// matches", the red line of Fig. 2).
    pub threshold: i64,
}

impl Default for UngappedFilterParams {
    fn default() -> Self {
        UngappedFilterParams {
            xdrop: 910, // ten match-scores, LASTZ's default magnitude
            threshold: 3000,
        }
    }
}

/// Which filtering algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterStage {
    /// Banded Smith-Waterman gapped filtering (Darwin-WGA).
    Gapped(GappedFilterParams),
    /// X-drop ungapped filtering (LASTZ baseline).
    Ungapped(UngappedFilterParams),
}

impl FilterStage {
    /// The stage's pass threshold.
    pub fn threshold(&self) -> i64 {
        match self {
            FilterStage::Gapped(p) => p.threshold,
            FilterStage::Ungapped(p) => p.threshold,
        }
    }
}

/// Which extension algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtensionStage {
    /// GACT-X tiled extension (Darwin-WGA).
    GactX(TilingParams),
    /// GACT with a traceback-memory budget (Fig. 10 comparison).
    Gact {
        /// Traceback memory per tile, bytes.
        traceback_bytes: u64,
    },
    /// Untiled software Y-drop extension (LASTZ baseline).
    Ydrop {
        /// Y-drop threshold.
        y: i64,
    },
}

/// Full pipeline parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WgaParams {
    /// Substitution matrix `W` (Table IIa).
    pub scoring: SubstitutionMatrix,
    /// Affine gap penalties (Table IIa).
    pub gaps: GapPenalties,
    /// Spaced seed pattern (Fig. 5).
    pub seed_pattern: SeedPattern,
    /// D-SOFT seeding parameters.
    pub dsoft: DsoftParams,
    /// Repeat cap: seed words occurring more often are masked.
    pub max_seed_occurrences: usize,
    /// Filtering stage.
    pub filter: FilterStage,
    /// Extension stage.
    pub extension: ExtensionStage,
    /// Extension threshold `H_e`: alignments scoring below are dropped.
    pub extension_threshold: i64,
    /// Also search the reverse-complement strand of the query.
    pub both_strands: bool,
}

impl WgaParams {
    /// Darwin-WGA defaults (Table II): gapped filtering + GACT-X.
    ///
    /// # Examples
    ///
    /// ```
    /// use wga_core::config::{FilterStage, WgaParams};
    ///
    /// let p = WgaParams::darwin_wga();
    /// match p.filter {
    ///     FilterStage::Gapped(g) => {
    ///         assert_eq!(g.tile_size, 320);
    ///         assert_eq!(g.band, 32);
    ///     }
    ///     _ => unreachable!(),
    /// }
    /// assert_eq!(p.extension_threshold, 4000);
    /// ```
    pub fn darwin_wga() -> WgaParams {
        WgaParams {
            scoring: SubstitutionMatrix::darwin_wga(),
            gaps: GapPenalties::darwin_wga(),
            seed_pattern: SeedPattern::lastz_default(),
            dsoft: DsoftParams::default(),
            max_seed_occurrences: 1000,
            filter: FilterStage::Gapped(GappedFilterParams::default()),
            extension: ExtensionStage::GactX(TilingParams::gactx_default()),
            extension_threshold: 4000,
            both_strands: false,
        }
    }

    /// LASTZ-like baseline: identical scoring, seeding and extension, but
    /// *ungapped* filtering with LASTZ's default thresholds (3000).
    ///
    /// The extension stage is deliberately the same GACT-X configuration
    /// as [`WgaParams::darwin_wga`], so any sensitivity difference between
    /// the two pipelines is attributable to the filtering stage alone —
    /// the controlled comparison behind the paper's Table III claim that
    /// "the added sensitivity can be completely attributed to [the]
    /// gapped filtering stage" (§VI-B). Use [`WgaParams::lastz_ydrop`]
    /// for the untiled software extension LASTZ actually ships.
    pub fn lastz_baseline() -> WgaParams {
        WgaParams {
            filter: FilterStage::Ungapped(UngappedFilterParams::default()),
            extension_threshold: 3000,
            ..WgaParams::darwin_wga()
        }
    }

    /// LASTZ-like baseline with LASTZ's own untiled Y-drop software
    /// extension instead of GACT-X.
    pub fn lastz_ydrop() -> WgaParams {
        WgaParams {
            extension: ExtensionStage::Ydrop { y: 9430 },
            ..WgaParams::lastz_baseline()
        }
    }

    /// Sets the filter threshold (`H_f`), preserving everything else.
    pub fn with_filter_threshold(mut self, threshold: i64) -> WgaParams {
        match &mut self.filter {
            FilterStage::Gapped(p) => p.threshold = threshold,
            FilterStage::Ungapped(p) => p.threshold = threshold,
        }
        self
    }
}

impl Default for WgaParams {
    fn default() -> Self {
        WgaParams::darwin_wga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn darwin_defaults_match_table_2() {
        let p = WgaParams::darwin_wga();
        assert_eq!(p.gaps.open, 430);
        assert_eq!(p.gaps.extend, 30);
        assert_eq!(p.seed_pattern.weight(), 12);
        match p.extension {
            ExtensionStage::GactX(t) => {
                assert_eq!(t.tile_size, 1920);
                assert_eq!(t.overlap, 128);
                assert_eq!(t.y, 9430);
            }
            _ => panic!("default extension must be GACT-X"),
        }
    }

    #[test]
    fn lastz_baseline_uses_ungapped_filter() {
        let p = WgaParams::lastz_baseline();
        assert!(matches!(p.filter, FilterStage::Ungapped(_)));
        assert_eq!(p.filter.threshold(), 3000);
        assert_eq!(p.extension_threshold, 3000);
    }

    #[test]
    fn with_filter_threshold() {
        let p = WgaParams::darwin_wga().with_filter_threshold(3000);
        assert_eq!(p.filter.threshold(), 3000);
        let q = WgaParams::lastz_baseline().with_filter_threshold(500);
        assert_eq!(q.filter.threshold(), 500);
    }
}
