//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` pairs; weights must sum to > 0.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        OneOf { options, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.options {
            if pick < *weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted");
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// String strategies from a small regex subset: literal characters,
/// `\x` escapes, `[...]` classes (with ranges), and the quantifiers
/// `{n}`, `{m,n}`, `?`, `+`, `*` (the unbounded forms cap at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed class in regex {self:?}"));
                    let class = expand_class(&chars[i + 1..close]);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let escaped = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in regex {self:?}"));
                    i += 2;
                    vec![escaped]
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, self);
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}

/// Expands a character-class body (`01`, `a-z0-9`, ...) into its members.
fn expand_class(body: &[char]) -> Vec<char> {
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            for code in lo..=hi {
                if let Some(c) = char::from_u32(code) {
                    members.push(c);
                }
            }
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    assert!(!members.is_empty(), "empty character class");
    members
}

/// Parses an optional quantifier at `chars[*i]`, advancing past it.
fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?} in regex {pattern:?}"))
            };
            match body.split_once(',') {
                Some((min, max)) => (parse(min), parse(max)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}
