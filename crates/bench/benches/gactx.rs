//! Extension-algorithm throughput: GACT-X vs GACT vs untiled Y-drop.
//!
//! Backs the Fig. 10 throughput axis and the §III-D claim that GACT-X
//! needs ~2× fewer cycles than GACT at paper-scale tiles.

use align::gactx::{extend_alignment, TilingParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use genome::evolve::{EvolutionParams, SyntheticPair};
use genome::{GapPenalties, SubstitutionMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_extension(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let pair = SyntheticPair::generate(12_000, &EvolutionParams::at_distance(0.25), &mut rng);
    let target = &pair.target.sequence;
    let query = &pair.query.sequence;
    let (anchor_t, anchor_q) = pair.orthologous_pairs()[3_000];
    let w = SubstitutionMatrix::darwin_wga();
    let g = GapPenalties::darwin_wga();

    let configs = [
        ("gactx_default", TilingParams::gactx_default()),
        ("gact_1mb", TilingParams::gact_with_memory(1024 * 1024)),
        ("gact_512kb", TilingParams::gact_with_memory(512 * 1024)),
        (
            "ydrop_untiled",
            TilingParams {
                tile_size: 8192,
                overlap: 256,
                y: 9430,
                edge_traceback: false,
            },
        ),
    ];

    let mut group = c.benchmark_group("extension");
    group.sample_size(20);
    for (name, params) in configs {
        group.throughput(Throughput::Elements(1));
        group.bench_function(name, |b| {
            b.iter(|| {
                extend_alignment(
                    black_box(target),
                    black_box(query),
                    anchor_t,
                    anchor_q,
                    &w,
                    &g,
                    &params,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extension);
criterion_main!(benches);
