//! Stage scheduling and provisioning balance (Fig. 6).
//!
//! Darwin-WGA pipelines its stages: software D-SOFT feeds seed hits to
//! the BSW filter bank, whose passing anchors feed the GACT-X extension
//! bank. Steady-state throughput is set by the slowest stage relative to
//! its demand, which is how the paper provisions 50 BSW : 2 GACT-X arrays
//! on the FPGA (and 64 : 12 on the ASIC): the filter sees every seed hit
//! but passes only a small fraction, so few extension arrays keep up.

use crate::platform::{AcceleratorConfig, CpuConfig};
use serde::{Deserialize, Serialize};

/// Per-stage demand of a run, in units each stage processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageDemand {
    /// Seed lookups per output unit of work (fed by software).
    pub seeds: f64,
    /// Filter tiles (one per seed hit surviving D-SOFT banding).
    pub filter_tiles: f64,
    /// Extension tiles (several per passing anchor).
    pub extension_tiles: f64,
    /// Mean live DP cells per extension tile.
    pub cells_per_extension_tile: f64,
    /// Mean rows per extension tile.
    pub rows_per_extension_tile: f64,
}

impl StageDemand {
    /// Demand ratios measured from a pipeline run's workload counters.
    pub fn from_workload(w: &crate::Workload) -> StageDemand {
        let ext = w.extension_tiles.max(1) as f64;
        StageDemand {
            seeds: w.seeds as f64,
            filter_tiles: w.filter_tiles as f64,
            extension_tiles: w.extension_tiles as f64,
            cells_per_extension_tile: w.extension_cells as f64 / ext,
            rows_per_extension_tile: w.extension_rows as f64 / ext,
        }
    }
}

/// Steady-state utilisation of every stage when the pipeline runs at the
/// bottleneck's rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineBalance {
    /// Whole-run completions per second at steady state.
    pub runs_per_second: f64,
    /// Seeding (software) utilisation in [0, 1].
    pub seeding_util: f64,
    /// Filter bank utilisation.
    pub filter_util: f64,
    /// Extension bank utilisation.
    pub extension_util: f64,
    /// Which stage is the bottleneck.
    pub bottleneck: Stage,
}

/// Pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Software seeding.
    Seeding,
    /// BSW filter bank.
    Filter,
    /// GACT-X extension bank.
    Extension,
}

/// Computes the steady-state balance of an accelerator pipeline for a
/// given demand profile and software seeding rate.
///
/// # Examples
///
/// ```
/// use hwsim::platform::AcceleratorConfig;
/// use hwsim::schedule::{pipeline_balance, StageDemand};
///
/// // A filter-dominated demand (the WGA regime, §III-A).
/// let demand = StageDemand {
///     seeds: 1.0e9,
///     filter_tiles: 1.0e10,
///     extension_tiles: 3.0e6,
///     cells_per_extension_tile: 1920.0 * 600.0,
///     rows_per_extension_tile: 1920.0,
/// };
/// let b = pipeline_balance(&AcceleratorConfig::fpga(), &demand, 50.0e6);
/// assert!(b.runs_per_second > 0.0);
/// ```
pub fn pipeline_balance(
    acc: &AcceleratorConfig,
    demand: &StageDemand,
    seeds_per_second_software: f64,
) -> PipelineBalance {
    // Per-run seconds each stage would need running alone.
    let seed_s = if seeds_per_second_software > 0.0 {
        demand.seeds / seeds_per_second_software
    } else {
        0.0
    };
    let filter_s = if acc.filter_tiles_per_second() > 0.0 {
        demand.filter_tiles / acc.filter_tiles_per_second()
    } else {
        0.0
    };
    let ext_tps = acc.gactx.tiles_per_second(
        demand.cells_per_extension_tile,
        demand.rows_per_extension_tile,
    );
    let ext_s = if ext_tps > 0.0 {
        demand.extension_tiles / ext_tps
    } else {
        0.0
    };

    let slowest = seed_s.max(filter_s).max(ext_s).max(f64::MIN_POSITIVE);
    let bottleneck = if slowest == seed_s {
        Stage::Seeding
    } else if slowest == filter_s {
        Stage::Filter
    } else {
        Stage::Extension
    };
    PipelineBalance {
        runs_per_second: 1.0 / slowest,
        seeding_util: seed_s / slowest,
        filter_util: filter_s / slowest,
        extension_util: ext_s / slowest,
        bottleneck,
    }
}

/// Finds the smallest extension-array count whose utilisation stays below
/// `max_util` for the given demand — the provisioning question the paper
/// answers with "2 on the FPGA, 12 on the ASIC".
pub fn provision_extension_arrays(
    base: &AcceleratorConfig,
    demand: &StageDemand,
    seeds_per_second_software: f64,
    max_util: f64,
) -> usize {
    for n in 1..=256 {
        let mut acc = *base;
        acc.gactx.num_arrays = n;
        let b = pipeline_balance(&acc, demand, seeds_per_second_software);
        if b.extension_util <= max_util {
            return n;
        }
    }
    256
}

/// CPU-only balance for comparison: everything in software.
pub fn software_balance(
    cpu: &CpuConfig,
    demand: &StageDemand,
    sw: &crate::SoftwareThroughput,
) -> f64 {
    let _ = cpu;
    let seed_s = demand.seeds / sw.seeds_per_second.max(f64::MIN_POSITIVE);
    let filter_s = demand.filter_tiles / sw.filter_tiles_per_second.max(f64::MIN_POSITIVE);
    let ext_s = demand.extension_tiles / sw.extension_tiles_per_second.max(f64::MIN_POSITIVE);
    1.0 / (seed_s + filter_s + ext_s).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::AcceleratorConfig;

    /// Demand mirroring Table V's ce11-cb4 row: 14,585M filter tiles,
    /// 4.4M extension tiles.
    fn paper_demand() -> StageDemand {
        StageDemand {
            seeds: 1.362e9,
            filter_tiles: 1.4585e10,
            extension_tiles: 4.4e6,
            cells_per_extension_tile: 1920.0 * 600.0,
            rows_per_extension_tile: 1920.0,
        }
    }

    #[test]
    fn fpga_filter_is_the_accelerated_bottleneck() {
        // With generous software seeding, the filter bank should be the
        // busiest hardware stage — it is what the paper sized the design
        // around.
        let b = pipeline_balance(&AcceleratorConfig::fpga(), &paper_demand(), 2.0e9);
        assert_eq!(b.bottleneck, Stage::Filter);
        assert!(b.extension_util < 0.9, "{}", b.extension_util);
    }

    #[test]
    fn two_gactx_arrays_suffice_on_the_fpga() {
        // The paper maps 50 BSW + 2 GACT-X arrays; for Table V demand the
        // provisioning search must agree that ~2 arrays keep extension
        // from throttling the filter bank.
        let needed = provision_extension_arrays(
            &AcceleratorConfig::fpga(),
            &paper_demand(),
            2.0e9,
            0.95,
        );
        assert!(needed <= 3, "needed {needed}");
    }

    #[test]
    fn utilisations_are_normalised() {
        let b = pipeline_balance(&AcceleratorConfig::asic(), &paper_demand(), 2.0e9);
        for util in [b.seeding_util, b.filter_util, b.extension_util] {
            assert!((0.0..=1.0 + 1e-9).contains(&util), "{util}");
        }
        let max = b
            .seeding_util
            .max(b.filter_util)
            .max(b.extension_util);
        assert!((max - 1.0).abs() < 1e-9, "bottleneck must be saturated");
    }

    #[test]
    fn slow_software_seeding_becomes_the_bottleneck() {
        let b = pipeline_balance(&AcceleratorConfig::asic(), &paper_demand(), 1.0e6);
        assert_eq!(b.bottleneck, Stage::Seeding);
    }

    #[test]
    fn software_balance_is_far_below_accelerated() {
        let cpu = CpuConfig::c4_8xlarge();
        let sw = crate::SoftwareThroughput {
            seeds_per_second: 50.0e6,
            filter_tiles_per_second: 225.0e3,
            ungapped_filters_per_second: 45.0e6,
            extension_tiles_per_second: 1.2e3,
        };
        let sw_rate = software_balance(&cpu, &paper_demand(), &sw);
        let hw = pipeline_balance(&AcceleratorConfig::fpga(), &paper_demand(), 2.0e9);
        assert!(hw.runs_per_second > 10.0 * sw_rate);
    }
}
