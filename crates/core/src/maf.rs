//! MAF (Multiple Alignment Format) output (§V-E).
//!
//! Both LASTZ and Darwin-WGA emit MAF, which AXTCHAIN then post-processes
//! into chains. One alignment becomes an `a` block with two `s` lines
//! (target first), aligned columns padded with `-` at gaps.

use crate::report::{Strand, WgaAlignment};
use align::AlignOp;
use genome::Sequence;
use std::io::{self, Write};

/// Writes alignments as MAF.
///
/// Reverse-strand alignments report `-` strand and coordinates on the
/// reverse-complemented query, with `srcSize` letting consumers map back,
/// exactly as the MAF spec defines.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use align::{AlignOp, Alignment, Cigar};
/// use genome::Sequence;
/// use wga_core::maf::write_maf;
/// use wga_core::report::{Strand, WgaAlignment};
///
/// let t: Sequence = "ACGT".parse()?;
/// let q: Sequence = "ACGT".parse()?;
/// let mut cigar = Cigar::new();
/// cigar.push(AlignOp::Match, 4);
/// let alignments = vec![WgaAlignment {
///     alignment: Alignment::new(0, 0, cigar, 382),
///     strand: Strand::Forward,
/// }];
/// let mut out = Vec::new();
/// write_maf(&mut out, "chrT", &t, "chrQ", &q, &alignments)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("a score=382"));
/// assert!(text.contains("s chrT 0 4 + 4 ACGT"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_maf<W: Write>(
    mut writer: W,
    target_name: &str,
    target: &Sequence,
    query_name: &str,
    query: &Sequence,
    alignments: &[WgaAlignment],
) -> io::Result<()> {
    writeln!(writer, "##maf version=1 scoring=darwin-wga")?;
    write_maf_blocks(writer, target_name, target, query_name, query, alignments)
}

/// Writes MAF alignment blocks without the `##maf` header — for callers
/// assembling one file from several chromosome pairs.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_maf_blocks<W: Write>(
    mut writer: W,
    target_name: &str,
    target: &Sequence,
    query_name: &str,
    query: &Sequence,
    alignments: &[WgaAlignment],
) -> io::Result<()> {
    for wa in alignments {
        let a = &wa.alignment;
        let (mut t, mut q) = (a.target_start, a.query_start);
        let mut t_text = String::with_capacity(a.cigar.len());
        let mut q_text = String::with_capacity(a.cigar.len());
        for op in a.cigar.iter_ops() {
            match op {
                AlignOp::Match | AlignOp::Subst => {
                    t_text.push(char::from(target[t]));
                    q_text.push(char::from(query[q]));
                    t += 1;
                    q += 1;
                }
                AlignOp::Insert => {
                    t_text.push('-');
                    q_text.push(char::from(query[q]));
                    q += 1;
                }
                AlignOp::Delete => {
                    t_text.push(char::from(target[t]));
                    q_text.push('-');
                    t += 1;
                }
            }
        }
        let strand = match wa.strand {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        };
        writeln!(writer, "a score={}", a.score)?;
        writeln!(
            writer,
            "s {} {} {} + {} {}",
            target_name,
            a.target_start,
            a.target_span(),
            target.len(),
            t_text
        )?;
        writeln!(
            writer,
            "s {} {} {} {} {} {}",
            query_name,
            a.query_start,
            a.query_span(),
            strand,
            query.len(),
            q_text
        )?;
        writeln!(writer)?;
    }
    Ok(())
}

/// A parsed MAF block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MafBlock {
    /// Score from the `a` line.
    pub score: i64,
    /// Target name, start, span, source size.
    pub target: MafSeqLine,
    /// Query name, start, span, source size and strand.
    pub query: MafSeqLine,
    /// The reconstructed alignment (coordinates as in the `s` lines).
    pub alignment: Alignment,
    /// Query strand.
    pub strand: Strand,
}

/// One `s` line's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MafSeqLine {
    /// Sequence name.
    pub name: String,
    /// Start coordinate.
    pub start: usize,
    /// Aligned span (bases consumed).
    pub span: usize,
    /// Source sequence length.
    pub src_size: usize,
}

use align::{Alignment, Cigar};
use std::io::BufRead;

/// Reads MAF blocks produced by [`write_maf`] (or compatible pairwise
/// MAF).
///
/// The CIGAR is rebuilt from the aligned texts, so a written-then-read
/// alignment round-trips exactly.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn read_maf<R: BufRead>(reader: R) -> Result<Vec<MafBlock>, String> {
    let mut blocks = Vec::new();
    let mut lines = reader.lines().enumerate();
    while let Some((idx, line)) = lines.next() {
        let line = line.map_err(|e| format!("line {}: {e}", idx + 1))?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(score_text) = line.strip_prefix("a score=") else {
            return Err(format!("line {}: expected 'a score=' block", idx + 1));
        };
        let score: i64 = score_text
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad score", idx + 1))?;
        let (t_meta, t_text) = parse_s_line(&mut lines)?;
        let (q_meta, q_text) = parse_s_line(&mut lines)?;
        if t_text.len() != q_text.len() {
            return Err(format!(
                "block at line {}: aligned texts differ in length",
                idx + 1
            ));
        }
        let mut cigar = Cigar::new();
        for (tc, qc) in t_text.chars().zip(q_text.chars()) {
            let op = match (tc, qc) {
                ('-', '-') => return Err("double-gap column".into()),
                ('-', _) => AlignOp::Insert,
                (_, '-') => AlignOp::Delete,
                (a, b) if a.eq_ignore_ascii_case(&b) && a != 'N' && a != 'n' => AlignOp::Match,
                _ => AlignOp::Subst,
            };
            cigar.push(op, 1);
        }
        let alignment = Alignment::new(t_meta.0.start, q_meta.0.start, cigar, score);
        blocks.push(MafBlock {
            score,
            strand: if q_meta.1 { Strand::Reverse } else { Strand::Forward },
            target: t_meta.0,
            query: q_meta.0,
            alignment,
        });
    }
    Ok(blocks)
}

type SLine = ((MafSeqLine, bool), String);

fn parse_s_line<I>(lines: &mut I) -> Result<SLine, String>
where
    I: Iterator<Item = (usize, std::io::Result<String>)>,
{
    for (idx, line) in lines.by_ref() {
        let line = line.map_err(|e| format!("line {}: {e}", idx + 1))?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("s") {
            return Err(format!("line {}: expected 's' line", idx + 1));
        }
        let err = |what: &str| format!("line {}: bad {what}", idx + 1);
        let name = parts.next().ok_or_else(|| err("name"))?.to_string();
        let start: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("start"))?;
        let span: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("span"))?;
        let strand = parts.next().ok_or_else(|| err("strand"))?;
        let src_size: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("srcSize"))?;
        let text = parts.next().ok_or_else(|| err("text"))?.to_string();
        return Ok((
            (
                MafSeqLine {
                    name,
                    start,
                    span,
                    src_size,
                },
                strand == "-",
            ),
            text,
        ));
    }
    Err("unexpected end of file inside a block".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_maf_round_trips_written_output() {
        let t: Sequence = "AACCGGTTAACC".parse().unwrap();
        let q: Sequence = "AACGGTTTAACC".parse().unwrap();
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 3);
        c.push(AlignOp::Delete, 1);
        c.push(AlignOp::Match, 4);
        c.push(AlignOp::Insert, 1);
        c.push(AlignOp::Match, 4);
        let alignments = vec![WgaAlignment {
            alignment: Alignment::new(0, 0, c, 555),
            strand: Strand::Forward,
        }];
        let mut out = Vec::new();
        write_maf(&mut out, "chrT", &t, "chrQ", &q, &alignments).unwrap();
        let blocks = read_maf(&out[..]).unwrap();
        assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        assert_eq!(b.score, 555);
        assert_eq!(b.target.name, "chrT");
        assert_eq!(b.query.name, "chrQ");
        assert_eq!(b.alignment, alignments[0].alignment);
        assert_eq!(b.strand, Strand::Forward);
        assert_eq!(b.target.src_size, 12);
    }

    #[test]
    fn read_maf_rejects_malformed_input() {
        assert!(read_maf(&b"a score=zzz
"[..]).is_err());
        assert!(read_maf(&b"bogus line
"[..]).is_err());
        assert!(read_maf(&b"a score=5
s only three
"[..]).is_err());
        // Mismatched aligned-text lengths.
        let bad = b"a score=5
s t 0 2 + 2 AC
s q 0 3 + 3 ACG
";
        assert!(read_maf(&bad[..]).is_err());
    }

    #[test]
    fn gapped_alignment_pads_with_dashes() {
        let t: Sequence = "AACCGGTT".parse().unwrap();
        let q: Sequence = "AACGGTT".parse().unwrap();
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 3);
        c.push(AlignOp::Delete, 1);
        c.push(AlignOp::Match, 4);
        let alignments = vec![WgaAlignment {
            alignment: Alignment::new(0, 0, c, 100),
            strand: Strand::Forward,
        }];
        let mut out = Vec::new();
        write_maf(&mut out, "t", &t, "q", &q, &alignments).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("AACCGGTT"), "{text}");
        assert!(text.contains("AAC-GGTT"), "{text}");
        assert!(text.starts_with("##maf"));
    }

    #[test]
    fn reverse_strand_marked() {
        let t: Sequence = "ACGT".parse().unwrap();
        let q: Sequence = "ACGT".parse().unwrap();
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 4);
        let alignments = vec![WgaAlignment {
            alignment: Alignment::new(0, 0, c, 1),
            strand: Strand::Reverse,
        }];
        let mut out = Vec::new();
        write_maf(&mut out, "t", &t, "q", &q, &alignments).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("s q 0 4 - 4 ACGT"), "{text}");
    }
}
