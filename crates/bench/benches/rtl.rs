//! Cycle-level array-simulation throughput — how fast the RTL-level
//! models run relative to the software kernels they validate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use genome::markov::MarkovModel;
use genome::{GapPenalties, SubstitutionMatrix};
use hwsim::bsw_array::BswTileGeometry;
use hwsim::rtl::simulate_bsw_tile;
use hwsim::rtl_gactx::simulate_gactx_tile;
use hwsim::systolic::ArrayConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_rtl(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let model = MarkovModel::genome_like();
    let t = model.generate(320, &mut rng);
    let q = model.generate(320, &mut rng);
    let w = SubstitutionMatrix::darwin_wga();
    let g = GapPenalties::darwin_wga();
    let geometry = BswTileGeometry::darwin_wga();
    let array = ArrayConfig::fpga();

    let mut group = c.benchmark_group("rtl");
    group.bench_function("bsw_tile_sim", |b| {
        b.iter(|| {
            simulate_bsw_tile(
                black_box(t.as_slice()),
                black_box(q.as_slice()),
                &w,
                &g,
                &geometry,
                &array,
            )
        })
    });
    group.bench_function("gactx_tile_sim", |b| {
        b.iter(|| {
            simulate_gactx_tile(
                black_box(t.as_slice()),
                black_box(t.as_slice()),
                &w,
                &g,
                9430,
                &array,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rtl);
criterion_main!(benches);
