//! Figure 1 — growth of genome assemblies and WGA species pairs.
//!
//! The paper's Fig. 1 plots the cumulative number of genome assemblies in
//! the NCBI genome database by year (a) and the quadratic number of
//! species pairs available for pairwise WGA (b). The assembly counts are
//! embedded here as approximate values digitised from the public NCBI
//! growth curve; the pair counts follow from `n·(n−1)/2`.
//!
//! Run with: `cargo run --release -p wga-bench --bin fig1_growth`

/// Approximate cumulative eukaryote assembly counts (one per species) in
/// the NCBI genome database per year, digitised from the public growth
/// statistics the paper's Fig. 1a is based on.
const ASSEMBLIES_BY_YEAR: [(u32, u64); 18] = [
    (2001, 30),
    (2002, 50),
    (2003, 80),
    (2004, 130),
    (2005, 200),
    (2006, 290),
    (2007, 400),
    (2008, 540),
    (2009, 700),
    (2010, 900),
    (2011, 1200),
    (2012, 1600),
    (2013, 2100),
    (2014, 2700),
    (2015, 3400),
    (2016, 4300),
    (2017, 5400),
    (2018, 6700),
];

fn pairs(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

fn bar(value: u64, max: u64, width: usize) -> String {
    let filled = ((value as f64 / max as f64) * width as f64).round() as usize;
    "#".repeat(filled)
}

fn main() {
    println!("Figure 1 — cumulative genome assemblies (a) and WGA species pairs (b)\n");
    let max_assemblies = ASSEMBLIES_BY_YEAR.last().unwrap().1;
    let max_pairs = pairs(max_assemblies);

    println!("{:<6} {:>10}  {:<30} {:>14}  {:<30}", "year", "assemblies", "(a)", "pairs", "(b)");
    for &(year, n) in &ASSEMBLIES_BY_YEAR {
        println!(
            "{:<6} {:>10}  {:<30} {:>14}  {:<30}",
            year,
            n,
            bar(n, max_assemblies, 30),
            pairs(n),
            bar(pairs(n), max_pairs, 30)
        );
    }

    // The quadratic blow-up the introduction argues from:
    let (y0, n0) = ASSEMBLIES_BY_YEAR[9];
    let (y1, n1) = ASSEMBLIES_BY_YEAR[17];
    println!(
        "\nFrom {y0} to {y1} assemblies grew {:.1}x but candidate pairwise WGAs grew {:.1}x —",
        n1 as f64 / n0 as f64,
        pairs(n1) as f64 / pairs(n0) as f64
    );
    println!("the computational load of comparative genomics grows quadratically (§I).");
    println!("At 10,000 genomes (Genome 10K), {} pairwise WGAs are possible (§VII).", pairs(10_000));

    // §VII cost projection, from the paper's Table V runtimes and prices.
    // ce11-cb4 (the cheapest pair): iso-sensitive software 64,960 s on a
    // $1.59/h instance; Darwin-WGA FPGA 3,823 s at $1.65/h; ASIC 219 s at
    // 43.34 W.
    let n_pairs = 1_000_000u64; // "even for a small fraction" of 50M pairs
    let sw_cost = 64_960.0 / 3600.0 * 1.59 * n_pairs as f64;
    let fpga_cost = 3_823.0 / 3600.0 * 1.65 * n_pairs as f64;
    let asic_kwh = 219.0 * 43.34 / 3.6e6 * n_pairs as f64;
    println!("\n§VII projection for 1M sensitive pairwise WGAs (paper Table V rates):");
    println!("  iso-sensitive software: ${:.1}M", sw_cost / 1e6);
    println!("  Darwin-WGA FPGA:        ${:.1}M  ({:.0}x cheaper)", fpga_cost / 1e6, sw_cost / fpga_cost);
    println!("  Darwin-WGA ASIC:        {:.0} MWh of energy (~${:.1}M at $0.1/kWh + chip NRE)",
        asic_kwh / 1000.0, asic_kwh * 0.1 / 1e6);
    println!("Sensitive WGA at biobank scale is only economical with acceleration (§VII).");
}
