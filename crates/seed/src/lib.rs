//! Seeding substrate for the Darwin-WGA reproduction.
//!
//! Implements the seeding stage of the seed–filter–extend pipeline:
//! spaced seed patterns with optional transition tolerance ([`pattern`]),
//! a seed table indexing the target genome ([`table`]), and the modified
//! D-SOFT diagonal-band seeding of §III-B ([`dsoft`]).
//!
//! # Quick start
//!
//! ```
//! use genome::Sequence;
//! use seed::{dsoft::{dsoft_seeds, DsoftParams}, pattern::SeedPattern, table::SeedTable};
//!
//! let target: Sequence = "TTTTTTTTACGGTCAGTCGATTGCAGTCTTTTTTTT".parse()?;
//! let query: Sequence = "GGGGACGGTCAGTCGATTGCAGTCGGGG".parse()?;
//!
//! let pattern = SeedPattern::lastz_default();
//! let table = SeedTable::build(&target, &pattern, 1000);
//! let seeds = dsoft_seeds(&table, &query, &DsoftParams::default());
//! assert_eq!(seeds.hits[0].target_pos, 8);
//! # Ok::<(), genome::ParseBaseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dsoft;
pub mod hit;
pub mod pattern;
pub mod sensitivity;
pub mod table;

pub use dsoft::{dsoft_seeds, DsoftParams, DsoftResult};
pub use hit::{Anchor, SeedHit};
pub use pattern::SeedPattern;
pub use table::SeedTable;
