//! Collinear chaining of local alignments (the AXTCHAIN role, §II).
//!
//! Chains are maximally-scoring ordered sequences of alignments with
//! strictly increasing target and query coordinates; gaps between
//! consecutive members — including double-sided gaps — are charged by the
//! [`crate::gapcost::LooseGapCost`] schedule. The paper evaluates every
//! sensitivity metric on chains rather than raw alignments.

use crate::gapcost::LooseGapCost;
use align::Alignment;
use serde::{Deserialize, Serialize};

/// One chain: indices into the input alignment slice, in order, plus the
/// chain score.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chain {
    /// Member alignment indices, ordered by coordinate.
    pub members: Vec<usize>,
    /// Net chain score: member scores minus gap costs.
    pub score: i64,
}

impl Chain {
    /// Number of member alignments.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the chain has no members (never produced by the chainer).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total exactly-matching base pairs across members.
    pub fn matched_bases(&self, alignments: &[Alignment]) -> u64 {
        self.members.iter().map(|&i| alignments[i].matches()).sum()
    }

    /// Target span `[start, end)` covered by the chain.
    pub fn target_span(&self, alignments: &[Alignment]) -> (usize, usize) {
        let first = &alignments[self.members[0]];
        let last = &alignments[self.members.last().copied().unwrap_or(self.members[0])];
        (first.target_start, last.target_end)
    }
}

/// Chains `alignments` and returns all chains, best first.
///
/// Every alignment belongs to exactly one chain (greedy extraction of the
/// best remaining chain, as axtChain does). Chains scoring below
/// `min_score` are discarded together with their members.
///
/// The predecessor search is O(n²); whole-genome runs chain thousands of
/// alignments, for which this is adequate (axtChain uses a kd-tree for the
/// same computation).
///
/// # Examples
///
/// ```
/// use align::{Alignment, Cigar, AlignOp};
/// use chain::chainer::chain_alignments;
///
/// let block = |t: usize, q: usize| {
///     let mut c = Cigar::new();
///     c.push(AlignOp::Match, 50);
///     Alignment::new(t, q, c, 5_000)
/// };
/// // Two collinear blocks chain together; score = 10000 − gap cost.
/// let chains = chain_alignments(&[block(0, 0), block(100, 90)], 0);
/// assert_eq!(chains.len(), 1);
/// assert_eq!(chains[0].members.len(), 2);
/// assert!(chains[0].score > 9_000);
/// ```
pub fn chain_alignments(alignments: &[Alignment], min_score: i64) -> Vec<Chain> {
    let gap = LooseGapCost;
    let n = alignments.len();
    if n == 0 {
        return Vec::new();
    }
    // Sort indices by target start, then query start.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| {
        (
            alignments[i].target_start,
            alignments[i].query_start,
            alignments[i].target_end,
        )
    });

    // DP over the sorted order.
    let mut best_score: Vec<i64> = vec![0; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for (rank, &j) in order.iter().enumerate() {
        let a = &alignments[j];
        best_score[j] = a.score;
        for &i in &order[..rank] {
            let b = &alignments[i];
            if b.target_end <= a.target_start && b.query_end <= a.query_start {
                let dt = (a.target_start - b.target_end) as u64;
                let dq = (a.query_start - b.query_end) as u64;
                let candidate = best_score[i] + a.score - gap.cost(dt, dq) as i64;
                if candidate > best_score[j] {
                    best_score[j] = candidate;
                    pred[j] = Some(i);
                }
            }
        }
    }

    // Greedy extraction: repeatedly take the best unused chain end and
    // walk its predecessors, skipping members already claimed.
    let mut used = vec![false; n];
    let mut ends: Vec<usize> = (0..n).collect();
    ends.sort_unstable_by_key(|&i| std::cmp::Reverse(best_score[i]));
    let mut chains = Vec::new();
    for &end in &ends {
        if used[end] {
            continue;
        }
        let mut members = Vec::new();
        let mut cursor = Some(end);
        let mut score = 0i64;
        let mut prev: Option<usize> = None;
        while let Some(i) = cursor {
            if used[i] {
                break;
            }
            used[i] = true;
            score += alignments[i].score;
            if let Some(p) = prev {
                let a = &alignments[p];
                let b = &alignments[i];
                let dt = (a.target_start - b.target_end) as u64;
                let dq = (a.query_start - b.query_end) as u64;
                score -= gap.cost(dt, dq) as i64;
            }
            members.push(i);
            prev = Some(i);
            cursor = pred[i];
        }
        if members.is_empty() {
            continue;
        }
        members.reverse();
        if score >= min_score {
            chains.push(Chain { members, score });
        }
    }
    chains.sort_unstable_by_key(|c| std::cmp::Reverse(c.score));
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::{AlignOp, Cigar};

    fn block(t: usize, q: usize, len: u32, score: i64) -> Alignment {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, len);
        Alignment::new(t, q, c, score)
    }

    #[test]
    fn single_alignment_single_chain() {
        let chains = chain_alignments(&[block(0, 0, 10, 1000)], 0);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].score, 1000);
        assert_eq!(chains[0].len(), 1);
    }

    #[test]
    fn collinear_blocks_chain() {
        let a = [block(0, 0, 50, 5000), block(100, 95, 50, 5000), block(200, 200, 50, 5000)];
        let chains = chain_alignments(&a, 0);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].members, vec![0, 1, 2]);
        assert!(chains[0].score > 12_000);
        assert_eq!(chains[0].matched_bases(&a), 150);
        assert_eq!(chains[0].target_span(&a), (0, 250));
    }

    #[test]
    fn crossing_blocks_do_not_chain() {
        // Second block is before the first in query: order violated.
        let a = [block(0, 100, 50, 5000), block(100, 0, 50, 5000)];
        let chains = chain_alignments(&a, 0);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].len(), 1);
    }

    #[test]
    fn weak_link_splits_chain() {
        // A tiny middle block with an enormous gap on both sides: chaining
        // through it should lose against separate chains.
        let a = [
            block(0, 0, 50, 5000),
            block(1_000_000, 5_000_000, 5, 10),
            block(9_000_000, 9_000_000, 50, 5000),
        ];
        let chains = chain_alignments(&a, 0);
        // Big blocks chain with each other or not, but the tiny block must
        // not bridge them profitably.
        assert!(chains.iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn min_score_filters_chains() {
        let a = [block(0, 0, 5, 100), block(1000, 1000, 50, 9000)];
        let chains = chain_alignments(&a, 3000);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].members, vec![1]);
    }

    #[test]
    fn double_sided_gap_allowed_but_charged() {
        let a = [block(0, 0, 50, 5000), block(150, 200, 50, 5000)];
        let chains = chain_alignments(&a, 0);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 2);
        // dt=100, dq=150 → both-sided cost interpolated between 900 and 1400.
        assert!(chains[0].score < 10_000 - 900);
        assert!(chains[0].score > 10_000 - 1400);
    }

    #[test]
    fn empty_input() {
        assert!(chain_alignments(&[], 0).is_empty());
    }

    #[test]
    fn chains_are_sorted_by_score() {
        let a = [
            block(0, 0, 10, 900),
            block(5000, 5000, 50, 4000),
            block(20000, 20000, 100, 9000),
        ];
        let chains = chain_alignments(&a, 0);
        for w in chains.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
