//! Owned DNA sequences and borrowed views.

use crate::alphabet::{Base, ParseBaseError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, Range};

/// An owned DNA sequence over the extended alphabet.
///
/// Internally one byte per base (the 3-bit hardware code, zero-extended).
/// Construction validates input, so a `Sequence` always contains valid
/// bases.
///
/// # Examples
///
/// ```
/// use genome::{Base, Sequence};
///
/// let seq: Sequence = "ACGTN".parse()?;
/// assert_eq!(seq.len(), 5);
/// assert_eq!(seq[0], Base::A);
/// assert_eq!(seq.reverse_complement().to_string(), "NACGT");
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Sequence {
    bases: Vec<Base>,
}

impl Sequence {
    /// Creates an empty sequence.
    pub fn new() -> Sequence {
        Sequence { bases: Vec::new() }
    }

    /// Creates an empty sequence with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Sequence {
        Sequence {
            bases: Vec::with_capacity(capacity),
        }
    }

    /// Builds a sequence from raw bases.
    pub fn from_bases(bases: Vec<Base>) -> Sequence {
        Sequence { bases }
    }

    /// Parses ASCII bytes into a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBaseError`] on the first byte that is not a letter
    /// (IUPAC ambiguity letters are accepted and map to `N`).
    pub fn from_ascii(bytes: &[u8]) -> Result<Sequence, ParseBaseError> {
        let mut bases = Vec::with_capacity(bytes.len());
        for &byte in bytes {
            bases.push(Base::try_from(byte)?);
        }
        Ok(Sequence { bases })
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The bases as a slice.
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// Returns the base at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<Base> {
        self.bases.get(index).copied()
    }

    /// Appends one base.
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Borrowed view of `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> &[Base] {
        &self.bases[range]
    }

    /// An owned sub-sequence of `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subsequence(&self, range: Range<usize>) -> Sequence {
        Sequence {
            bases: self.bases[range].to_vec(),
        }
    }

    /// The reverse complement of this sequence.
    pub fn reverse_complement(&self) -> Sequence {
        Sequence {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Iterator over bases.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Base> + ExactSizeIterator + '_ {
        self.bases.iter().copied()
    }

    /// Fraction of bases that are `G` or `C` (ambiguous bases excluded from
    /// the denominator). Returns 0.0 for sequences with no unambiguous bases.
    // lint: allow(determinism): stats display only — never feeds canonical output; one IEEE-exact division
    pub fn gc_content(&self) -> f64 {
        let mut gc = 0usize;
        let mut total = 0usize;
        for &b in &self.bases {
            match b {
                Base::G | Base::C => {
                    gc += 1;
                    total += 1;
                }
                Base::A | Base::T => total += 1,
                Base::N => {}
            }
        }
        if total == 0 {
            0.0
        } else {
            gc as f64 / total as f64
        }
    }

    /// Packs the sequence into 3-bit codes, little-end first, for
    /// byte-oriented storage (matches the BRAM encoding in §IV).
    ///
    /// Returns `(packed_bytes, len)`; unpack with [`Sequence::from_packed3`].
    pub fn to_packed3(&self) -> (bytes::Bytes, usize) {
        let mut out = bytes::BytesMut::with_capacity((self.len() * 3).div_ceil(8));
        let mut acc: u32 = 0;
        let mut nbits = 0u32;
        for &b in &self.bases {
            acc |= (b.code() as u32) << nbits;
            nbits += 3;
            while nbits >= 8 {
                out.extend_from_slice(&[(acc & 0xff) as u8]);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.extend_from_slice(&[(acc & 0xff) as u8]);
        }
        (out.freeze(), self.len())
    }

    /// Unpacks a sequence previously produced by [`Sequence::to_packed3`].
    pub fn from_packed3(packed: &[u8], len: usize) -> Sequence {
        let mut bases = Vec::with_capacity(len);
        let mut acc: u32 = 0;
        let mut nbits = 0u32;
        let mut iter = packed.iter();
        for _ in 0..len {
            while nbits < 3 {
                acc |= (*iter.next().unwrap_or(&0) as u32) << nbits;
                nbits += 8;
            }
            bases.push(Base::from_code((acc & 0b111) as u8));
            acc >>= 3;
            nbits -= 3;
        }
        Sequence { bases }
    }
}

impl Index<usize> for Sequence {
    type Output = Base;

    fn index(&self, index: usize) -> &Base {
        &self.bases[index]
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bases {
            write!(f, "{}", b)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Sequence {
    type Err = ParseBaseError;

    fn from_str(s: &str) -> Result<Sequence, ParseBaseError> {
        Sequence::from_ascii(s.as_bytes())
    }
}

impl FromIterator<Base> for Sequence {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Sequence {
        Sequence {
            bases: iter.into_iter().collect(),
        }
    }
}

impl Extend<Base> for Sequence {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        self.bases.extend(iter);
    }
}

impl AsRef<[Base]> for Sequence {
    fn as_ref(&self) -> &[Base] {
        &self.bases
    }
}

impl From<Vec<Base>> for Sequence {
    fn from(bases: Vec<Base>) -> Sequence {
        Sequence { bases }
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = Base;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Base>>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.iter().copied()
    }
}

impl IntoIterator for Sequence {
    type Item = Base;
    type IntoIter = std::vec::IntoIter<Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let s: Sequence = "ACGTNACGT".parse().unwrap();
        assert_eq!(s.to_string(), "ACGTNACGT");
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn parse_rejects_non_letters() {
        assert!("ACG-T".parse::<Sequence>().is_err());
    }

    #[test]
    fn reverse_complement_double_is_identity() {
        let s: Sequence = "ACGTTGCANNA".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn reverse_complement_simple() {
        let s: Sequence = "AACG".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "CGTT");
    }

    #[test]
    fn subsequence_and_slice_agree() {
        let s: Sequence = "ACGTACGT".parse().unwrap();
        assert_eq!(s.subsequence(2..6).as_slice(), s.slice(2..6));
        assert_eq!(s.subsequence(2..6).to_string(), "GTAC");
    }

    #[test]
    fn gc_content_ignores_n() {
        let s: Sequence = "GCGCNNNN".parse().unwrap();
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        let t: Sequence = "ATGCNN".parse().unwrap();
        assert!((t.gc_content() - 0.5).abs() < 1e-12);
        let all_n: Sequence = "NNN".parse().unwrap();
        assert_eq!(all_n.gc_content(), 0.0);
    }

    #[test]
    fn packed3_round_trip() {
        let s: Sequence = "ACGTNACGTTGCAACGTN".parse().unwrap();
        let (packed, len) = s.to_packed3();
        assert!(packed.len() <= (len * 3).div_ceil(8));
        assert_eq!(Sequence::from_packed3(&packed, len), s);
    }

    #[test]
    fn packed3_empty() {
        let s = Sequence::new();
        let (packed, len) = s.to_packed3();
        assert_eq!(len, 0);
        assert!(packed.is_empty());
        assert_eq!(Sequence::from_packed3(&packed, 0), s);
    }

    #[test]
    fn collect_from_iterator() {
        let s: Sequence = [Base::A, Base::C].into_iter().collect();
        assert_eq!(s.to_string(), "AC");
        let mut t = Sequence::new();
        t.extend([Base::G, Base::T]);
        assert_eq!(t.to_string(), "GT");
    }
}
