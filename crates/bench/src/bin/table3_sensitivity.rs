//! Table III — sensitivity comparison of Darwin-WGA and LASTZ.
//!
//! For each of the paper's four species pairs (synthetic stand-ins at the
//! Fig. 8 phylogenetic distances, Table I sizes scaled down) we run both
//! pipelines, chain the outputs, and print the paper's three sensitivity
//! metrics: top-10 chain score improvement, matched base pairs (and the
//! inflation-proof unique variant), and conserved-exon recovery (against
//! the evolution model's ground truth instead of TBLASTX).
//!
//! Expected shape (paper): Darwin-WGA ≥ LASTZ everywhere; improvements
//! grow with phylogenetic distance (up to 3.12× matched bp for ce11-cb4).
//!
//! Run with: `cargo run --release -p wga-bench --bin table3_sensitivity`
//! Optional args: `[genome_len] [replicates]` (defaults 80000 3).

use genome::evolve::SpeciesPair;
use wga_bench::{paper_pair, pct, run_and_measure};
use wga_core::config::WgaParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let genome_len: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80_000);
    let replicates: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    println!("Table III — sensitivity comparison (synthetic pairs, {genome_len} bp, {replicates} replicates)\n");
    println!("Species pairs (Table I / Fig. 8 stand-ins):");
    for sp in SpeciesPair::paper_pairs() {
        println!(
            "  {:<14} distance {:.2} subst/site (real target size {:.1} Mbp)",
            sp.name(),
            sp.distance,
            sp.real_size_mbp
        );
    }

    println!(
        "\n{:<14} | {:>9} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7} | {:>11} {:>11}",
        "pair", "top10 Δ%", "LASTZ bp", "Darwin bp", "ratio", "LZ uniq", "DW uniq", "ratio", "LZ exons", "DW exons"
    );

    for (i, sp) in SpeciesPair::paper_pairs().iter().enumerate() {
        let mut lastz_bp = 0u64;
        let mut darwin_bp = 0u64;
        let mut lastz_uniq = 0u64;
        let mut darwin_uniq = 0u64;
        let mut lastz_top10 = 0i64;
        let mut darwin_top10 = 0i64;
        let (mut lz_exons, mut dw_exons, mut total_exons) = (0usize, 0usize, 0usize);
        for rep in 0..replicates {
            let pair = paper_pair(sp, genome_len, 1000 + 17 * i as u64 + rep);
            let lz = run_and_measure(WgaParams::lastz_baseline(), &pair);
            let dw = run_and_measure(WgaParams::darwin_wga(), &pair);
            lastz_bp += lz.matched;
            darwin_bp += dw.matched;
            lastz_uniq += lz.unique_matched;
            darwin_uniq += dw.unique_matched;
            lastz_top10 += lz.top10_score;
            darwin_top10 += dw.top10_score;
            lz_exons += lz.exons_found;
            dw_exons += dw.exons_found;
            total_exons += lz.exons_total;
        }
        println!(
            "{:<14} | {:>+8.2}% | {:>11} {:>11} {:>6.2}x | {:>11} {:>11} {:>6.2}x | {:>6}/{:<4} {:>6}/{:<4}",
            sp.name(),
            pct(darwin_top10 as f64, lastz_top10 as f64),
            lastz_bp,
            darwin_bp,
            darwin_bp as f64 / lastz_bp.max(1) as f64,
            lastz_uniq,
            darwin_uniq,
            darwin_uniq as f64 / lastz_uniq.max(1) as f64,
            lz_exons,
            total_exons,
            dw_exons,
            total_exons,
        );
    }

    println!("\nPaper (Table III): top10 +5.73/+1.86/+0.05/+0.03%, matched-bp 3.12/1.42/1.41/1.25x,");
    println!("exons +2.70/+0.41/+0.09/+0.20%. Expected reproduction shape: Darwin ≥ LASTZ on every");
    println!("metric, improvements growing with phylogenetic distance. Close pairs approach parity");
    println!("here because baseline and Darwin-WGA share seeding and extension exactly (see");
    println!("EXPERIMENTS.md for the discussion).");
}
