//! `use … as` aliasing fixture: the call through `launch` must resolve
//! to `spawn_worker`, not become an unknown edge.

use crate::pool::spawn_worker as launch;

pub fn execute() {
    launch();
}

mod pool {
    pub fn spawn_worker() {}
}
