//! Mono- and di-nucleotide statistics.
//!
//! Genomes have pronounced 2-base statistics (CpG depletion in particular,
//! see Jabbari & Bernardi 2004, cited as [65] in the paper); the shuffled
//! null model used in the paper's noise analysis preserves them, and the
//! synthetic ancestor generator reproduces them.

use crate::alphabet::Base;
use crate::sequence::Sequence;
use serde::{Deserialize, Serialize};

/// Counts of each base.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaseCounts {
    counts: [u64; 5],
}

impl BaseCounts {
    /// Counts bases in `seq`.
    pub fn from_sequence(seq: &Sequence) -> BaseCounts {
        let mut counts = [0u64; 5];
        for b in seq.iter() {
            counts[b.code() as usize] += 1;
        }
        BaseCounts { counts }
    }

    /// Count for one base.
    pub fn count(&self, base: Base) -> u64 {
        self.counts[base.code() as usize]
    }

    /// Total number of bases counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Frequency of `base` among unambiguous bases (0 if none).
    pub fn frequency(&self, base: Base) -> f64 {
        let unambiguous: u64 = Base::DNA.iter().map(|&b| self.count(b)).sum();
        if unambiguous == 0 {
            0.0
        } else {
            self.count(base) as f64 / unambiguous as f64
        }
    }
}

/// A 4×4 matrix of dinucleotide counts over unambiguous adjacent pairs.
///
/// Pairs containing `N` are skipped (both as first and second element).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DinucleotideCounts {
    counts: [[u64; 4]; 4],
}

impl DinucleotideCounts {
    /// Counts adjacent unambiguous pairs in `seq`.
    pub fn from_sequence(seq: &Sequence) -> DinucleotideCounts {
        let mut counts = [[0u64; 4]; 4];
        let s = seq.as_slice();
        for w in s.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a != Base::N && b != Base::N {
                counts[a.code() as usize][b.code() as usize] += 1;
            }
        }
        DinucleotideCounts { counts }
    }

    /// Count of the pair `first`,`second`.
    ///
    /// # Panics
    ///
    /// Panics if either base is `N`.
    pub fn count(&self, first: Base, second: Base) -> u64 {
        self.counts[first.code2() as usize][second.code2() as usize]
    }

    /// Total number of counted pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The conditional transition probabilities `P(second | first)` as a
    /// 4×4 row-stochastic matrix; rows with no observations become uniform.
    pub fn transition_probabilities(&self) -> [[f64; 4]; 4] {
        let mut probs = [[0.25f64; 4]; 4];
        for (i, row) in self.counts.iter().enumerate() {
            let row_total: u64 = row.iter().sum();
            if row_total > 0 {
                for (j, &c) in row.iter().enumerate() {
                    probs[i][j] = c as f64 / row_total as f64;
                }
            }
        }
        probs
    }

    /// Observed/expected ratio for a pair under independence, the classic
    /// measure of CpG depletion. Returns `None` when the expectation is 0.
    pub fn obs_exp_ratio(&self, first: Base, second: Base) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let first_total: u64 = (0..4).map(|j| self.counts[first.code2() as usize][j]).sum();
        let second_total: u64 = (0..4).map(|i| self.counts[i][second.code2() as usize]).sum();
        let expected = (first_total as f64 / total as f64) * (second_total as f64);
        if expected == 0.0 {
            None
        } else {
            Some(self.count(first, second) as f64 / expected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_counts() {
        let s: Sequence = "AACGTN".parse().unwrap();
        let c = BaseCounts::from_sequence(&s);
        assert_eq!(c.count(Base::A), 2);
        assert_eq!(c.count(Base::N), 1);
        assert_eq!(c.total(), 6);
        assert!((c.frequency(Base::A) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dinucleotide_counts_skip_n() {
        let s: Sequence = "ACNGT".parse().unwrap();
        let d = DinucleotideCounts::from_sequence(&s);
        assert_eq!(d.count(Base::A, Base::C), 1);
        assert_eq!(d.count(Base::G, Base::T), 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn transition_probabilities_are_stochastic() {
        let s: Sequence = "ACGTACGTAAGGTTCC".parse().unwrap();
        let d = DinucleotideCounts::from_sequence(&s);
        for row in d.transition_probabilities() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row sums to {sum}");
        }
    }

    #[test]
    fn empty_rows_become_uniform() {
        let s: Sequence = "AAAA".parse().unwrap();
        let d = DinucleotideCounts::from_sequence(&s);
        let p = d.transition_probabilities();
        // Row for C saw nothing.
        assert_eq!(p[Base::C.code2() as usize], [0.25; 4]);
        // Row for A is all A→A.
        assert!((p[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn obs_exp_detects_depletion() {
        // Sequence with no CG pairs at all.
        let s: Sequence = "CACACACACA".parse().unwrap();
        let d = DinucleotideCounts::from_sequence(&s);
        let ratio = d.obs_exp_ratio(Base::C, Base::G);
        assert_eq!(ratio, None); // no G at all → expectation 0
        let ca = d.obs_exp_ratio(Base::C, Base::A).unwrap();
        assert!(ca > 1.0);
    }
}
