//! Test-runner configuration.

/// Configuration for a `proptest!` block (subset of upstream's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream's default. Tests that need fewer cases override with
        // `with_cases`.
        ProptestConfig { cases: 256 }
    }
}
