//! Order-1 Markov sequence generation.
//!
//! Synthetic ancestral genomes are drawn from a first-order Markov chain so
//! they exhibit genome-like 2-base statistics (notably CpG depletion), the
//! same property the paper's shuffled null model preserves.

use crate::alphabet::Base;
use crate::sequence::Sequence;
use crate::stats::DinucleotideCounts;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A first-order Markov model over `{A, C, G, T}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovModel {
    initial: [f64; 4],
    transition: [[f64; 4]; 4],
}

impl MarkovModel {
    /// A uniform i.i.d. model.
    pub fn uniform() -> MarkovModel {
        MarkovModel {
            initial: [0.25; 4],
            transition: [[0.25; 4]; 4],
        }
    }

    /// A model with genome-like composition: ~41% GC (typical for the
    /// invertebrate genomes in Table I) and a depleted CpG dinucleotide
    /// (obs/exp ≈ 0.25), plus mild AA/TT enrichment.
    pub fn genome_like() -> MarkovModel {
        // Stationary-ish base composition: A=0.295, C=0.205, G=0.205, T=0.295.
        let mut transition = [[0.295, 0.205, 0.205, 0.295]; 4];
        let (a, c, g, t) = (0usize, 1usize, 2usize, 3usize);
        // Deplete CpG: move most of C→G mass to C→A and C→T.
        transition[c][g] = 0.05;
        transition[c][a] = 0.335;
        transition[c][t] = 0.36;
        transition[c][c] = 0.255;
        // Mild AA / TT enrichment (poly-A/poly-T tracts are common).
        transition[a][a] = 0.345;
        transition[a][c] = 0.18;
        transition[a][g] = 0.205;
        transition[a][t] = 0.27;
        transition[t][t] = 0.345;
        transition[t][g] = 0.18;
        transition[t][c] = 0.205;
        transition[t][a] = 0.27;
        MarkovModel {
            initial: [0.295, 0.205, 0.205, 0.295],
            transition,
        }
    }

    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any distribution does not sum to 1 within 1e-6, or contains
    /// a negative probability.
    pub fn from_parts(initial: [f64; 4], transition: [[f64; 4]; 4]) -> MarkovModel {
        validate_distribution(&initial);
        for row in &transition {
            validate_distribution(row);
        }
        MarkovModel { initial, transition }
    }

    /// Fits a model to the dinucleotide counts of an observed sequence.
    /// Rows without observations fall back to uniform.
    pub fn fit(counts: &DinucleotideCounts) -> MarkovModel {
        let transition = counts.transition_probabilities();
        let mut initial = [0.0f64; 4];
        let total: u64 = counts.total();
        if total == 0 {
            return MarkovModel::uniform();
        }
        for (i, init) in initial.iter_mut().enumerate() {
            let row_total: u64 = (0..4)
                .map(|j| counts.count(Base::from_code(i as u8), Base::from_code(j as u8)))
                .sum();
            *init = row_total as f64 / total as f64;
        }
        MarkovModel {
            initial,
            transition,
        }
    }

    /// Probability of starting in each base.
    pub fn initial(&self) -> &[f64; 4] {
        &self.initial
    }

    /// Row-stochastic transition matrix `P(next | current)`.
    pub fn transition(&self) -> &[[f64; 4]; 4] {
        &self.transition
    }

    /// Generates a sequence of `len` bases.
    pub fn generate<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Sequence {
        let mut seq = Sequence::with_capacity(len);
        if len == 0 {
            return seq;
        }
        let mut state = sample(&self.initial, rng);
        seq.push(Base::from_code(state as u8));
        for _ in 1..len {
            state = sample(&self.transition[state], rng);
            seq.push(Base::from_code(state as u8));
        }
        seq
    }
}

impl Default for MarkovModel {
    fn default() -> Self {
        MarkovModel::genome_like()
    }
}

fn validate_distribution(dist: &[f64; 4]) {
    let sum: f64 = dist.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "distribution sums to {sum}, expected 1"
    );
    assert!(dist.iter().all(|&p| p >= 0.0), "negative probability");
}

fn sample<R: Rng + ?Sized>(dist: &[f64; 4], rng: &mut R) -> usize {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if x < acc {
            return i;
        }
    }
    3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BaseCounts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = MarkovModel::genome_like();
        assert_eq!(m.generate(0, &mut rng).len(), 0);
        assert_eq!(m.generate(1, &mut rng).len(), 1);
        assert_eq!(m.generate(1000, &mut rng).len(), 1000);
    }

    #[test]
    fn genome_like_depletes_cpg() {
        let mut rng = StdRng::seed_from_u64(2);
        let seq = MarkovModel::genome_like().generate(200_000, &mut rng);
        let d = DinucleotideCounts::from_sequence(&seq);
        let cpg = d.obs_exp_ratio(Base::C, Base::G).unwrap();
        assert!(cpg < 0.5, "CpG obs/exp {cpg} not depleted");
        let gc = seq.gc_content();
        assert!((0.35..0.47).contains(&gc), "GC content {gc}");
    }

    #[test]
    fn uniform_model_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let seq = MarkovModel::uniform().generate(100_000, &mut rng);
        let c = BaseCounts::from_sequence(&seq);
        for &b in &Base::DNA {
            let f = c.frequency(b);
            assert!((0.23..0.27).contains(&f), "{b} frequency {f}");
        }
    }

    #[test]
    fn fit_recovers_transition_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let seq = MarkovModel::genome_like().generate(300_000, &mut rng);
        let fitted = MarkovModel::fit(&DinucleotideCounts::from_sequence(&seq));
        let orig = MarkovModel::genome_like();
        for i in 0..4 {
            for j in 0..4 {
                let d = (fitted.transition()[i][j] - orig.transition()[i][j]).abs();
                assert!(d < 0.02, "transition[{i}][{j}] off by {d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "distribution sums")]
    fn from_parts_validates() {
        MarkovModel::from_parts([0.5, 0.5, 0.5, 0.5], [[0.25; 4]; 4]);
    }
}
