//! Crash-safe artifact writes: tmp file → fsync → rename → dir fsync.
//!
//! The report, `--metrics-out` and `--trace-out` artifacts are written
//! through [`write_atomic`], so a crash (or an injected
//! [`crate::faultsim::FaultKind::ShortWrite`]) at any point leaves
//! either the complete old file or the complete new file at the
//! destination — never a half-written JSON/JSONL document. The recipe
//! is the classic one:
//!
//! 1. write the full payload to `<path>.tmp` in the same directory,
//! 2. `fsync` the tmp file (data durable before the name flips),
//! 3. `rename` over the destination (atomic on POSIX),
//! 4. `fsync` the parent directory (the rename itself durable).
//!
//! [`pre_open_check`] creates the tmp file up front so `wga align`
//! still fails fast on an unwritable output path *before* hours of
//! alignment work, exactly as the old direct-`File::create` check did.

use crate::error::{WgaError, WgaResult};
use crate::faultsim::{FaultInjector, FaultKind, Hook, PAIRLESS};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The sibling tmp path an atomic write of `path` stages through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("out"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fail-fast check that `path` will be writable later: creates (and
/// leaves) its empty `.tmp` sibling, which the final [`write_atomic`]
/// overwrites and renames away.
///
/// # Errors
///
/// [`WgaError::Io`] when the tmp file cannot be created.
pub fn pre_open_check(path: &Path) -> WgaResult<()> {
    let tmp = tmp_path(path);
    File::create(&tmp).map_err(|e| WgaError::io(format!("create {}", tmp.display()), e))?;
    Ok(())
}

/// Atomically replaces `path` with `bytes` (tmp + fsync + rename +
/// parent-dir fsync).
///
/// # Errors
///
/// [`WgaError::Io`] on any step; the destination is untouched unless
/// the rename itself succeeded.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> WgaResult<()> {
    write_atomic_gated(path, bytes, None)
}

/// [`write_atomic`] with a fault-injection gate: `error` injections
/// fail before any byte is written, `short-write` injections truncate
/// the tmp payload halfway and fail *before the rename* — the
/// destination survives either way, which is what the chaos suite
/// asserts.
///
/// # Errors
///
/// [`WgaError::Io`] on any real or injected failure.
pub fn write_atomic_gated(
    path: &Path,
    bytes: &[u8],
    gate: Option<(&FaultInjector, Hook)>,
) -> WgaResult<()> {
    let io_err = |ctx: String, e: std::io::Error| WgaError::io(ctx, e);
    let mut short = false;
    if let Some((injector, hook)) = gate {
        match injector.probe(hook, PAIRLESS) {
            None => {}
            Some((FaultKind::ShortWrite, _)) => short = true,
            Some((FaultKind::Latency, ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some((FaultKind::Error | FaultKind::Panic, _)) => {
                return Err(io_err(
                    format!("write {}", path.display()),
                    std::io::Error::other("injected I/O error"),
                ));
            }
        }
    }

    let tmp = tmp_path(path);
    let mut file =
        File::create(&tmp).map_err(|e| io_err(format!("create {}", tmp.display()), e))?;
    let payload = if short { &bytes[..bytes.len() / 2] } else { bytes };
    file.write_all(payload)
        .map_err(|e| io_err(format!("write {}", tmp.display()), e))?;
    file.sync_all()
        .map_err(|e| io_err(format!("fsync {}", tmp.display()), e))?;
    drop(file);
    if short {
        // The simulated crash: data partially staged, rename never ran.
        return Err(io_err(
            format!("write {}", tmp.display()),
            std::io::Error::other("injected short write"),
        ));
    }
    fs::rename(&tmp, path).map_err(|e| {
        io_err(
            format!("rename {} -> {}", tmp.display(), path.display()),
            e,
        )
    })?;
    sync_parent_dir(path)
}

/// Fsyncs `path`'s parent directory so the rename is durable. A no-op
/// on platforms where directories cannot be opened for syncing.
fn sync_parent_dir(path: &Path) -> WgaResult<()> {
    #[cfg(unix)]
    {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let handle = File::open(dir)
                .map_err(|e| WgaError::io(format!("open dir {}", dir.display()), e))?;
            handle
                .sync_all()
                .map_err(|e| WgaError::io(format!("fsync dir {}", dir.display()), e))?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultsim::FaultPlan;

    fn tmp_dir_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wga-durable-{}-{name}", std::process::id()))
    }

    #[test]
    fn atomic_write_replaces_content() {
        let path = tmp_dir_file("replace.json");
        write_atomic(&path, b"{\"v\":1}\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}\n");
        write_atomic(&path, b"{\"v\":2}\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}\n");
        assert!(!tmp_path(&path).exists(), "tmp renamed away");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn pre_open_creates_tmp_and_write_consumes_it() {
        let path = tmp_dir_file("preopen.json");
        pre_open_check(&path).unwrap();
        assert!(tmp_path(&path).exists());
        assert!(!path.exists(), "pre-open must not create the destination");
        write_atomic(&path, b"x").unwrap();
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn pre_open_fails_fast_on_bad_directory() {
        let path = Path::new("/nonexistent-dir-for-wga-test/out.json");
        assert!(pre_open_check(path).is_err());
    }

    #[test]
    fn injected_short_write_leaves_destination_intact() {
        let path = tmp_dir_file("short.json");
        write_atomic(&path, b"intact-old-content").unwrap();
        let plan = FaultPlan::parse(
            "{\"format\":\"wga-fault-plan\",\"version\":1,\"faults\":[\
             {\"hook\":\"metrics.sink\",\"kind\":\"short-write\",\"at\":[0]}]}",
        )
        .unwrap();
        let injector = FaultInjector::new(plan, 0);
        let err = write_atomic_gated(&path, b"new-content", Some((&injector, Hook::MetricsSink)));
        assert!(err.is_err());
        assert_eq!(
            fs::read(&path).unwrap(),
            b"intact-old-content",
            "a torn sink write must never reach the destination"
        );
        // The next (un-injected) attempt goes through.
        write_atomic_gated(&path, b"new-content", Some((&injector, Hook::MetricsSink))).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new-content");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(tmp_path(&path));
    }

    #[test]
    fn injected_error_fails_before_touching_tmp() {
        let path = tmp_dir_file("err.json");
        let plan = FaultPlan::parse(
            "{\"format\":\"wga-fault-plan\",\"version\":1,\"faults\":[\
             {\"hook\":\"trace.sink\",\"kind\":\"error\",\"at\":[0]}]}",
        )
        .unwrap();
        let injector = FaultInjector::new(plan, 0);
        assert!(
            write_atomic_gated(&path, b"x", Some((&injector, Hook::TraceSink))).is_err()
        );
        assert!(!path.exists());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tmp_path_appends_suffix() {
        assert_eq!(
            tmp_path(Path::new("/a/b/metrics.json")),
            Path::new("/a/b/metrics.json.tmp")
        );
    }
}
