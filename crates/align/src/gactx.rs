//! GACT-X — tiled extension with constant traceback memory (§III-D).
//!
//! The extension stage walks outward from a filter anchor in overlapping
//! tiles of size `Te` (default 1920 bp). Each tile runs the X-drop kernel
//! ([`crate::xdrop::xdrop_tile`]); the path committed from a tile stops at
//! the overlap boundary (`O`, default 128 bp) so neighbouring tiles can be
//! stitched without boundary artefacts. Extension in a direction ends when
//! a tile's `Vmax` is not positive.
//!
//! With `y` set effectively infinite the same driver becomes plain GACT
//! (see [`crate::gact`]), which Fig. 10 compares against.

use crate::alignment::Alignment;
use crate::cigar::{AlignOp, Cigar};
use crate::xdrop::xdrop_tile_with_mode;
use genome::{Base, GapPenalties, Sequence, SubstitutionMatrix};
use serde::{Deserialize, Serialize};

/// Tiling parameters for GACT-X / GACT extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingParams {
    /// Tile size `Te` in bases (target and query window length).
    pub tile_size: usize,
    /// Overlap `O` between consecutive tiles, in bases.
    pub overlap: usize,
    /// X-drop threshold `Y`; cells more than `y` below `Vmax` are pruned.
    pub y: i64,
    /// Trace each tile from its far edge (GACT hardware behaviour) rather
    /// than from the global maximum (GACT-X). See
    /// [`crate::xdrop::xdrop_tile_with_mode`].
    pub edge_traceback: bool,
}

impl TilingParams {
    /// The paper's default GACT-X configuration (Table IIb):
    /// `Te = 1920`, `O = 128`, `Y = 9430`.
    pub fn gactx_default() -> TilingParams {
        TilingParams {
            tile_size: 1920,
            overlap: 128,
            y: 9430,
            edge_traceback: false,
        }
    }

    /// A GACT configuration fitting the given traceback memory: tile size
    /// `⌊√(2·bytes)⌋` (4 bits per cell over the full tile), no X-drop.
    ///
    /// The Fig. 10 sweep uses 512 KB, 1 MB and 2 MB, giving tile sizes
    /// 1024, 1448 and 2048.
    // lint: allow(determinism): integer-in, integer-out; IEEE 754 mul/sqrt/floor are correctly rounded, so the same bytes always give the same tile size on every platform
    pub fn gact_with_memory(bytes: u64) -> TilingParams {
        let tile = (2.0 * bytes as f64).sqrt().floor() as usize;
        TilingParams {
            tile_size: tile.max(64),
            overlap: 128.min(tile / 4),
            y: i64::MAX / 8, // effectively disables the drop test
            edge_traceback: true,
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if `overlap >= tile_size` or `tile_size == 0`.
    pub fn validate(&self) {
        assert!(self.tile_size > 0, "tile size must be positive");
        assert!(
            self.overlap < self.tile_size,
            "overlap {} must be smaller than tile size {}",
            self.overlap,
            self.tile_size
        );
    }
}

impl Default for TilingParams {
    fn default() -> Self {
        TilingParams::gactx_default()
    }
}

/// Workload counters accumulated over an extension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtensionStats {
    /// Tiles processed.
    pub tiles: u64,
    /// DP cells computed across all tiles.
    pub cells: u64,
    /// DP rows processed across all tiles.
    pub rows: u64,
    /// Peak per-tile traceback memory (bytes at 4 bits/cell).
    pub peak_traceback_bytes: u64,
}

impl ExtensionStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, other: &ExtensionStats) {
        self.tiles += other.tiles;
        self.cells += other.cells;
        self.rows += other.rows;
        self.peak_traceback_bytes = self.peak_traceback_bytes.max(other.peak_traceback_bytes);
    }
}

/// A one-directional extension result (path leading away from the anchor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// Path in forward orientation starting at the anchor.
    pub cigar: Cigar,
    /// Target bases consumed.
    pub target_advance: usize,
    /// Query bases consumed.
    pub query_advance: usize,
    /// Workload counters.
    pub stats: ExtensionStats,
}

/// Extends to the right (increasing coordinates) from `(t0, q0)`.
pub fn extend_right(
    target: &[Base],
    query: &[Base],
    t0: usize,
    q0: usize,
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    params: &TilingParams,
) -> Extension {
    params.validate();
    let mut cigar = Cigar::new();
    let mut stats = ExtensionStats::default();
    let (mut t, mut q) = (t0, q0);

    loop {
        let t_end = (t + params.tile_size).min(target.len());
        let q_end = (q + params.tile_size).min(query.len());
        if t >= t_end || q >= q_end {
            break;
        }
        let tile = xdrop_tile_with_mode(
            &target[t..t_end],
            &query[q..q_end],
            w,
            gaps,
            params.y,
            params.edge_traceback,
        );
        stats.tiles += 1;
        stats.cells += tile.cells;
        stats.rows += tile.rows as u64;
        stats.peak_traceback_bytes = stats.peak_traceback_bytes.max(tile.traceback_bytes);
        if tile.max_score <= 0 {
            break;
        }

        // A dimension constrains the commit point only when more sequence
        // exists beyond this window; the overlap region next to such an
        // edge is discarded and recomputed by the following tile.
        let lim_t = if t_end < target.len() {
            (t_end - t).saturating_sub(params.overlap)
        } else {
            usize::MAX
        };
        let lim_q = if q_end < query.len() {
            (q_end - q).saturating_sub(params.overlap)
        } else {
            usize::MAX
        };
        let at_edge = tile.max_target >= lim_t || tile.max_query >= lim_q;
        if !at_edge {
            // The maximum sits strictly inside the tile: the X-drop wall
            // (or both sequence ends) finished the alignment here.
            cigar.extend_cigar(&tile.cigar);
            t += tile.max_target;
            q += tile.max_query;
            break;
        }
        let (committed, dt, dq) = truncate_at_boundary(&tile.cigar, lim_t, lim_q);
        if dt == 0 && dq == 0 {
            break;
        }
        cigar.extend_cigar(&committed);
        t += dt;
        q += dq;
    }

    Extension {
        target_advance: t - t0,
        query_advance: q - q0,
        cigar,
        stats,
    }
}

/// Extends to the left (decreasing coordinates) from `(t0, q0)` exclusive.
///
/// The returned CIGAR is already in forward orientation, covering
/// `[t0 - target_advance, t0)` × `[q0 - query_advance, q0)`.
pub fn extend_left(
    target: &[Base],
    query: &[Base],
    t0: usize,
    q0: usize,
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    params: &TilingParams,
) -> Extension {
    let rev_t: Vec<Base> = target[..t0].iter().rev().copied().collect();
    let rev_q: Vec<Base> = query[..q0].iter().rev().copied().collect();
    let mut ext = extend_right(&rev_t, &rev_q, 0, 0, w, gaps, params);
    ext.cigar.reverse();
    ext
}

/// Extends an anchor in both directions and assembles the final local
/// alignment, as the Darwin-WGA extension stage does (Fig. 4c).
///
/// Returns `None` when neither direction produced any aligned base.
/// The final `score` is the exact rescore of the stitched path.
///
/// # Examples
///
/// ```
/// use align::gactx::{extend_alignment, TilingParams};
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "TTTTACGTACGTACGTTTTT".parse()?;
/// let q: Sequence = "GGGGACGTACGTACGTGGGG".parse()?;
/// let a = extend_alignment(
///     &t, &q, 10, 10,
///     &SubstitutionMatrix::darwin_wga(),
///     &GapPenalties::darwin_wga(),
///     &TilingParams::gactx_default(),
/// ).expect("alignment");
/// assert!(a.alignment.matches() >= 12);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn extend_alignment(
    target: &Sequence,
    query: &Sequence,
    anchor_t: usize,
    anchor_q: usize,
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    params: &TilingParams,
) -> Option<ExtendedAlignment> {
    let right = extend_right(
        target.as_slice(),
        query.as_slice(),
        anchor_t,
        anchor_q,
        w,
        gaps,
        params,
    );
    let left = extend_left(
        target.as_slice(),
        query.as_slice(),
        anchor_t,
        anchor_q,
        w,
        gaps,
        params,
    );

    let mut cigar = left.cigar.clone();
    cigar.extend_cigar(&right.cigar);
    if cigar.aligned_pairs() == 0 {
        return None;
    }
    let t_start = anchor_t - left.target_advance;
    let q_start = anchor_q - left.query_advance;
    let mut alignment = Alignment::new(t_start, q_start, cigar, 0);
    alignment.score = alignment.rescore(target, query, w, gaps);
    let mut stats = left.stats;
    stats.merge(&right.stats);
    Some(ExtendedAlignment { alignment, stats })
}

/// An assembled two-sided extension with its workload counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedAlignment {
    /// The stitched alignment.
    pub alignment: Alignment,
    /// Workload across both directions.
    pub stats: ExtensionStats,
}

/// Truncates `cigar` at the first point where the target advance reaches
/// `lim_t` or the query advance reaches `lim_q`; returns the committed
/// prefix and its (dt, dq) advance.
fn truncate_at_boundary(cigar: &Cigar, lim_t: usize, lim_q: usize) -> (Cigar, usize, usize) {
    let mut out = Cigar::new();
    let (mut dt, mut dq) = (0usize, 0usize);
    for &(op, count) in cigar.runs() {
        for _ in 0..count {
            if dt >= lim_t || dq >= lim_q {
                return (out, dt, dq);
            }
            match op {
                AlignOp::Match | AlignOp::Subst => {
                    dt += 1;
                    dq += 1;
                }
                AlignOp::Insert => dq += 1,
                AlignOp::Delete => dt += 1,
            }
            out.push(op, 1);
        }
    }
    (out, dt, dq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Sequence;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn small_params() -> TilingParams {
        TilingParams {
            tile_size: 64,
            overlap: 16,
            y: 9430,
            edge_traceback: false,
        }
    }

    fn random_seq(len: usize, rng: &mut StdRng) -> Sequence {
        (0..len)
            .map(|_| Base::from_code(rng.gen_range(0..4u8)))
            .collect()
    }

    #[test]
    fn extends_identical_sequences_end_to_end() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_seq(500, &mut rng);
        let a = extend_alignment(&s, &s, 250, 250, &w, &g, &small_params()).unwrap();
        assert_eq!(a.alignment.target_start, 0);
        assert_eq!(a.alignment.target_end, 500);
        assert_eq!(a.alignment.matches(), 500);
        a.alignment.validate(&s, &s).unwrap();
        assert!(a.stats.tiles >= 10); // both directions, several tiles
    }

    #[test]
    fn stitches_across_tile_boundaries_with_indels() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(2);
        let base = random_seq(600, &mut rng);
        // Query: same sequence with a 12-base deletion at position 300.
        let mut q = base.subsequence(0..300);
        q.extend(base.slice(312..600).iter().copied());
        let a = extend_alignment(&base, &q, 100, 100, &w, &g, &small_params()).unwrap();
        a.alignment.validate(&base, &q).unwrap();
        assert_eq!(a.alignment.cigar.count(AlignOp::Delete), 12);
        assert!(a.alignment.matches() > 550);
    }

    #[test]
    fn stops_when_similarity_ends() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(3);
        let shared = random_seq(200, &mut rng);
        let mut t = shared.clone();
        t.extend(random_seq(200, &mut rng).iter());
        let mut q = shared.clone();
        q.extend(random_seq(200, &mut rng).iter());
        let a = extend_alignment(&t, &q, 100, 100, &w, &g, &small_params()).unwrap();
        // Should cover the shared 200 bases and not much more.
        assert!(a.alignment.target_start < 5);
        assert!(a.alignment.target_end < 260, "end {}", a.alignment.target_end);
    }

    #[test]
    fn left_extension_matches_right_on_mirrored_input() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(4);
        let s = random_seq(300, &mut rng);
        let right = extend_right(s.as_slice(), s.as_slice(), 0, 0, &w, &g, &small_params());
        let left = extend_left(s.as_slice(), s.as_slice(), 300, 300, &w, &g, &small_params());
        assert_eq!(right.target_advance, left.target_advance);
        assert_eq!(right.cigar.matches(), left.cigar.matches());
    }

    #[test]
    fn score_is_exact_rescore() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(5);
        let t = random_seq(400, &mut rng);
        // ~10% mutated copy
        let q: Sequence = t
            .iter()
            .map(|b| {
                if rng.gen::<f64>() < 0.1 {
                    Base::from_code(rng.gen_range(0..4u8))
                } else {
                    b
                }
            })
            .collect();
        if let Some(a) = extend_alignment(&t, &q, 200, 200, &w, &g, &small_params()) {
            assert_eq!(a.alignment.score, a.alignment.rescore(&t, &q, &w, &g));
            a.alignment.validate(&t, &q).unwrap();
        }
    }

    #[test]
    fn anchor_at_sequence_edges() {
        let (w, g) = dw();
        let s: Sequence = "ACGTACGTACGT".parse().unwrap();
        let a = extend_alignment(&s, &s, 0, 0, &w, &g, &small_params()).unwrap();
        assert_eq!(a.alignment.matches(), 12);
        let b = extend_alignment(&s, &s, 12, 12, &w, &g, &small_params());
        // Anchor at the very end: only left extension contributes.
        assert_eq!(b.unwrap().alignment.matches(), 12);
    }

    #[test]
    fn gact_memory_to_tile_size() {
        assert_eq!(TilingParams::gact_with_memory(512 * 1024).tile_size, 1024);
        assert_eq!(TilingParams::gact_with_memory(2 * 1024 * 1024).tile_size, 2048);
        let t1m = TilingParams::gact_with_memory(1024 * 1024).tile_size;
        assert!((1440..=1456).contains(&t1m));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_overlap_larger_than_tile() {
        let p = TilingParams {
            tile_size: 64,
            overlap: 64,
            y: 100,
            edge_traceback: false,
        };
        p.validate();
    }

    #[test]
    fn truncate_at_boundary_splits_runs() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 10);
        c.push(AlignOp::Delete, 5);
        c.push(AlignOp::Match, 10);
        let (prefix, dt, dq) = truncate_at_boundary(&c, 12, 12);
        assert_eq!(dt, 12);
        assert_eq!(dq, 10);
        assert_eq!(prefix.to_string(), "10=2D");
    }
}
