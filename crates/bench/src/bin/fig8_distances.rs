//! Figure 8 — phylogenetic distances, recovered from our own alignments.
//!
//! The paper computes its species-pair distances with PHAST from the
//! whole-genome alignments. We close the same loop: generate each pair
//! *at* a known distance, align it with Darwin-WGA, and estimate the
//! distance back from the chained alignments with Jukes-Cantor and
//! Kimura-2P corrections (`chain::phylo`).
//!
//! Expected shape: at moderate distances the estimate recovers the
//! generating value; at deep distances only the conserved fraction still
//! aligns, so estimates are downward-biased (ascertainment) — the same
//! bias real WGA-based distance estimates carry. The K2P ts/tv ratio
//! reflects the model's transition bias.
//!
//! Run with: `cargo run --release -p wga-bench --bin fig8_distances`

use chain::phylo::SubstitutionCounts;
use genome::evolve::SpeciesPair;
use wga_bench::{paper_pair, run_and_measure};
use wga_core::config::WgaParams;

fn main() {
    let genome_len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);

    println!("Fig. 8 — distances re-estimated from Darwin-WGA alignments ({genome_len} bp)\n");
    println!(
        "{:<14} {:>10} | {:>8} {:>8} {:>8} {:>7}",
        "pair", "true dist", "p-dist", "JC", "K2P", "ts/tv"
    );
    for (i, sp) in SpeciesPair::paper_pairs().iter().enumerate() {
        let pair = paper_pair(sp, genome_len, 5000 + i as u64);
        let m = run_and_measure(WgaParams::darwin_wga(), &pair);
        let alignments = m.report.forward_alignments();
        let counts = SubstitutionCounts::from_chains(
            &m.chains,
            &alignments,
            &pair.target.sequence,
            &pair.query.sequence,
        );
        println!(
            "{:<14} {:>10.2} | {:>8.3} {:>8} {:>8} {:>7.2}",
            sp.name(),
            sp.distance,
            counts.p_distance(),
            counts
                .jukes_cantor()
                .map(|d| format!("{d:.3}"))
                .unwrap_or_else(|| "sat.".into()),
            counts
                .kimura_2p()
                .map(|d| format!("{d:.3}"))
                .unwrap_or_else(|| "sat.".into()),
            counts.ts_tv_ratio(),
        );
    }
    println!("\nNotes: estimates measure the *alignable* fraction, exactly as PHAST-");
    println!("from-WGA does on real genomes. At moderate distance (droYak2) the neutral");
    println!("fraction still aligns and the estimate recovers the generating value; at");
    println!("deep distances (dp4, cb4) only conserved islands — evolving ~4x slower —");
    println!("survive alignment, so the estimates drop below the moderate pair: the");
    println!("classic ascertainment bias of alignment-based distances. The ts/tv ratio");
    println!("reflects the model's transition bias, compressed toward 1 by multiple");
    println!("hits as divergence grows.");
}
