//! TBLASTX-like translated search.
//!
//! Translates target and query in all reading frames, seeds on exact
//! amino-acid words, extends each hit with X-drop Smith-Waterman in
//! protein space, and maps results back to DNA coordinates — the tool the
//! paper uses to define its exon-recovery oracle (§V-E) and names as
//! Darwin-WGA's future extension (§IX: "TBLASTX-like search in the amino
//! acid space for protein-coding genes").

use crate::amino::{translate, AminoAcid, Frame, TranslatedFrame};
use crate::blosum::ProteinMatrix;
use genome::Sequence;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Parameters of the translated search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TblastxParams {
    /// Seed word length in residues (BLAST's default for proteins is 3;
    /// 4 keeps the laptop-scale hit count tractable).
    pub word_len: usize,
    /// X-drop for the gapless protein extension.
    pub xdrop: i32,
    /// Minimum alignment score to report (in BLOSUM62 units).
    pub min_score: i64,
    /// Search the query's reverse-complement frames too.
    pub both_strands: bool,
}

impl Default for TblastxParams {
    fn default() -> Self {
        TblastxParams {
            word_len: 4,
            xdrop: 20,
            min_score: 60,
            both_strands: false,
        }
    }
}

/// One translated hit mapped back to DNA coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslatedHit {
    /// Target frame.
    pub target_frame: Frame,
    /// Query frame.
    pub query_frame: Frame,
    /// Protein-space alignment score (BLOSUM62, gapless).
    pub score: i64,
    /// Residues aligned.
    pub residues: usize,
    /// Target DNA interval covered (forward-strand coordinates).
    pub target_dna: (usize, usize),
    /// Query DNA interval covered (forward-strand coordinates).
    pub query_dna: (usize, usize),
}

/// Runs a translated search of `query` against `target`.
///
/// Returns hits sorted by descending score; overlapping hits within the
/// same frame pair are merged (best kept).
///
/// # Examples
///
/// ```
/// use genome::Sequence;
/// use protein::search::{tblastx, TblastxParams};
///
/// // A conserved coding region: same peptide, synonymous third bases.
/// let t: Sequence = "ATGGCAGCTGAAGTTCGTGGTCATAAACTGATGCCTTGGTACGAC".parse()?;
/// let q: Sequence = "ATGGCTGCAGAGGTACGTGGACACAAGCTTATGCCATGGTATGAT".parse()?;
/// let hits = tblastx(&t, &q, &TblastxParams::default());
/// assert!(!hits.is_empty());
/// assert_eq!(hits[0].target_frame.offset, 0);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn tblastx(target: &Sequence, query: &Sequence, params: &TblastxParams) -> Vec<TranslatedHit> {
    let matrix = ProteinMatrix::blosum62();
    let target_frames: Vec<TranslatedFrame> = Frame::forward()
        .iter()
        .map(|&f| translate(target, f))
        .collect();
    let query_frame_list: Vec<Frame> = if params.both_strands {
        Frame::all().to_vec()
    } else {
        Frame::forward().to_vec()
    };

    // Index target words.
    let mut index: HashMap<u64, Vec<(u8, u32)>> = HashMap::new();
    for (fi, tf) in target_frames.iter().enumerate() {
        for pos in 0..tf.peptide.len().saturating_sub(params.word_len.saturating_sub(1)) {
            if let Some(word) = pack_word(&tf.peptide[pos..pos + params.word_len]) {
                index.entry(word).or_default().push((fi as u8, pos as u32));
            }
        }
    }

    let mut hits: Vec<TranslatedHit> = Vec::new();
    for qframe in query_frame_list {
        let qf = translate(query, qframe);
        // Per (target frame, diagonal) best hit to suppress duplicates.
        // BTreeMap so `into_values()` drains in key order: the final
        // stable sort then breaks score ties by (frame, diagonal) and
        // hit order never depends on hasher state.
        let mut best_on_diag: BTreeMap<(u8, i64), TranslatedHit> = BTreeMap::new();
        for qpos in 0..qf.peptide.len().saturating_sub(params.word_len.saturating_sub(1)) {
            let Some(word) = pack_word(&qf.peptide[qpos..qpos + params.word_len]) else {
                continue;
            };
            let Some(matches) = index.get(&word) else {
                continue;
            };
            for &(fi, tpos) in matches {
                let tf = &target_frames[fi as usize];
                let (score, t0, t1, q0, _q1) = extend_gapless(
                    &tf.peptide,
                    &qf.peptide,
                    tpos as usize,
                    qpos,
                    params.word_len,
                    &matrix,
                    params.xdrop,
                );
                if score < params.min_score {
                    continue;
                }
                let diag = tpos as i64 - qpos as i64;
                let key = (fi, diag);
                let residues = t1 - t0;
                let hit = TranslatedHit {
                    target_frame: tf.frame,
                    query_frame: qframe,
                    score,
                    residues,
                    target_dna: dna_span(tf, t0, t1),
                    query_dna: dna_span(&qf, q0, q0 + residues),
                };
                match best_on_diag.get(&key) {
                    Some(existing) if existing.score >= score => {}
                    _ => {
                        best_on_diag.insert(key, hit);
                    }
                }
            }
        }
        hits.extend(best_on_diag.into_values());
    }

    hits.sort_by_key(|h| std::cmp::Reverse(h.score));
    hits
}

/// DNA interval covered by peptide positions `[p0, p1)` of a frame,
/// normalised to forward-strand coordinates.
fn dna_span(frame: &TranslatedFrame, p0: usize, p1: usize) -> (usize, usize) {
    if p1 == p0 {
        let d = frame.dna_position(p0);
        return (d, d);
    }
    let a = frame.dna_position(p0);
    let b = frame.dna_position(p1 - 1);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    (lo, hi + 3)
}

/// Packs a word of unambiguous residues into a `u64`; `None` when the
/// word contains a stop or X (those never seed).
fn pack_word(residues: &[AminoAcid]) -> Option<u64> {
    let mut word = 0u64;
    for &aa in residues {
        if matches!(aa, AminoAcid::Stop | AminoAcid::X) {
            return None;
        }
        word = word * 32 + aa.index() as u64;
    }
    Some(word)
}

/// Gapless X-drop extension in protein space around a seed word.
/// Returns `(score, t_start, t_end, q_start, q_end)` in peptide
/// coordinates.
fn extend_gapless(
    target: &[AminoAcid],
    query: &[AminoAcid],
    t0: usize,
    q0: usize,
    word_len: usize,
    matrix: &ProteinMatrix,
    xdrop: i32,
) -> (i64, usize, usize, usize, usize) {
    let mut score = 0i64;
    for k in 0..word_len {
        score += matrix.score(target[t0 + k], query[q0 + k]) as i64;
    }

    // Right.
    let (mut best_r, mut len_r, mut run) = (0i64, 0usize, 0i64);
    let (mut t, mut q) = (t0 + word_len, q0 + word_len);
    let mut steps = 0usize;
    while t < target.len() && q < query.len() {
        run += matrix.score(target[t], query[q]) as i64;
        steps += 1;
        if run > best_r {
            best_r = run;
            len_r = steps;
        }
        if run < best_r - xdrop as i64 {
            break;
        }
        t += 1;
        q += 1;
    }

    // Left.
    let (mut best_l, mut len_l, mut run) = (0i64, 0usize, 0i64);
    let (mut t, mut q) = (t0, q0);
    let mut steps = 0usize;
    while t > 0 && q > 0 {
        t -= 1;
        q -= 1;
        run += matrix.score(target[t], query[q]) as i64;
        steps += 1;
        if run > best_l {
            best_l = run;
            len_l = steps;
        }
        if run < best_l - xdrop as i64 {
            break;
        }
    }

    (
        score + best_r + best_l,
        t0 - len_l,
        t0 + word_len + len_r,
        q0 - len_l,
        q0 + word_len + len_r,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::markov::MarkovModel;
    use genome::Base;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a coding region whose third codon positions are randomised
    /// (synonymous-ish divergence): high protein identity, lower DNA
    /// identity.
    fn wobble_pair(codons: usize, rng: &mut StdRng) -> (Sequence, Sequence) {
        // Codons of the form NNC/NNT etc. — use 4-fold degenerate families
        // only (CT?, GT?, TC?, CC?, AC?, GC?, CG?, GG?) so any third base
        // is synonymous.
        const FAMILIES: [(Base, Base); 8] = [
            (Base::C, Base::T),
            (Base::G, Base::T),
            (Base::T, Base::C),
            (Base::C, Base::C),
            (Base::A, Base::C),
            (Base::G, Base::C),
            (Base::C, Base::G),
            (Base::G, Base::G),
        ];
        let mut t = Sequence::new();
        let mut q = Sequence::new();
        for _ in 0..codons {
            let (c1, c2) = FAMILIES[rng.gen_range(0..8)];
            t.push(c1);
            t.push(c2);
            t.push(Base::from_code(rng.gen_range(0..4)));
            q.push(c1);
            q.push(c2);
            q.push(Base::from_code(rng.gen_range(0..4)));
        }
        (t, q)
    }

    #[test]
    fn finds_wobble_diverged_coding_region() {
        let mut rng = StdRng::seed_from_u64(1);
        let (core_t, core_q) = wobble_pair(40, &mut rng);
        let model = MarkovModel::genome_like();
        let mut target = model.generate(300, &mut rng);
        let t_start = target.len();
        target.extend(core_t.iter());
        target.extend(model.generate(300, &mut rng).iter());
        let mut query = model.generate(200, &mut rng);
        query.extend(core_q.iter());
        query.extend(model.generate(200, &mut rng).iter());

        let hits = tblastx(&target, &query, &TblastxParams::default());
        assert!(!hits.is_empty(), "no translated hits found");
        let best = &hits[0];
        assert!(best.score >= 100, "score {}", best.score);
        // The hit must land on the coding region.
        assert!(best.target_dna.0 >= t_start.saturating_sub(30));
        assert!(best.target_dna.1 <= t_start + 120 + 30);
    }

    #[test]
    fn no_hits_between_unrelated_sequences() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = MarkovModel::genome_like();
        let a = model.generate(2_000, &mut rng);
        let b = model.generate(2_000, &mut rng);
        let hits = tblastx(&a, &b, &TblastxParams::default());
        assert!(hits.is_empty(), "{} spurious hits", hits.len());
    }

    #[test]
    fn detects_frame_shifted_homology() {
        // The same coding sequence embedded at offsets that differ by 1:
        // DNA-frame 0 of the target matches frame 1 of the query.
        let mut rng = StdRng::seed_from_u64(3);
        let (core, _) = wobble_pair(40, &mut rng);
        let model = MarkovModel::genome_like();
        let mut target = Sequence::new();
        target.extend(core.iter());
        let mut query = model.generate(1, &mut rng); // 1-base shift
        query.extend(core.iter());

        let hits = tblastx(&target, &query, &TblastxParams::default());
        assert!(!hits.is_empty());
        // The same homology is visible from every frame pair with a
        // constant relative shift of +1 (codon phase), e.g. (0,1), (1,2),
        // (2,0). The best hit must respect that phase.
        let best = &hits[0];
        assert_eq!(
            (best.query_frame.offset + 3 - best.target_frame.offset) % 3,
            1,
            "target frame {} query frame {}",
            best.target_frame.offset,
            best.query_frame.offset
        );
        assert!(!best.target_frame.reverse && !best.query_frame.reverse);
    }

    #[test]
    fn reverse_strand_found_when_enabled() {
        let mut rng = StdRng::seed_from_u64(4);
        let (core, _) = wobble_pair(40, &mut rng);
        let target = core.clone();
        let query = core.reverse_complement();
        let forward_only = tblastx(&target, &query, &TblastxParams::default());
        let both = tblastx(
            &target,
            &query,
            &TblastxParams {
                both_strands: true,
                ..TblastxParams::default()
            },
        );
        assert!(both.iter().any(|h| h.query_frame.reverse));
        assert!(both.first().map(|h| h.score).unwrap_or(0)
            > forward_only.first().map(|h| h.score).unwrap_or(0));
    }

    #[test]
    fn word_packing_rejects_stops() {
        use AminoAcid::*;
        assert!(pack_word(&[A, R, N, D]).is_some());
        assert!(pack_word(&[A, Stop, N, D]).is_none());
        assert!(pack_word(&[A, X, N, D]).is_none());
        assert_ne!(pack_word(&[A, R, N, D]), pack_word(&[R, A, N, D]));
    }
}
