//! Linear systolic-array timing model (§IV, Fig. 7).
//!
//! Both accelerator arrays are linear chains of `Npe` processing elements
//! exploiting wavefront parallelism along a *stripe* of `Npe` query rows:
//! the query characters of the stripe are loaded into the PEs and the
//! target characters stream through, one column per cycle once the
//! pipeline is full. A stripe over `c` columns therefore takes
//! `c + Npe` cycles (fill + drain), and a tile takes the sum over its
//! stripes plus a fixed per-tile configuration overhead.

use serde::{Deserialize, Serialize};

/// Configuration of one linear systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of processing elements (`Npe`).
    pub num_pe: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Fixed per-tile overhead cycles (configuration, launch, drain).
    pub tile_overhead_cycles: u64,
}

impl ArrayConfig {
    /// The FPGA array of the paper: 32 PEs at 150 MHz.
    pub fn fpga() -> ArrayConfig {
        ArrayConfig {
            num_pe: 32,
            freq_hz: 150.0e6,
            tile_overhead_cycles: 64,
        }
    }

    /// The ASIC array of the paper: 64 PEs at 1 GHz.
    pub fn asic() -> ArrayConfig {
        ArrayConfig {
            num_pe: 64,
            freq_hz: 1.0e9,
            tile_overhead_cycles: 64,
        }
    }

    /// Cycles for one stripe spanning `columns` matrix columns: pipeline
    /// fill/drain of `num_pe` plus one column per cycle.
    pub fn stripe_cycles(&self, columns: u64) -> u64 {
        columns + self.num_pe as u64
    }

    /// Number of stripes needed for `rows` query rows.
    pub fn stripes(&self, rows: u64) -> u64 {
        rows.div_ceil(self.num_pe as u64)
    }

    /// Converts a cycle count to seconds at this array's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero PE count or non-positive frequency.
    pub fn validate(&self) {
        assert!(self.num_pe > 0, "array needs at least one PE");
        assert!(self.freq_hz > 0.0, "frequency must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_and_stripes() {
        let a = ArrayConfig::fpga();
        assert_eq!(a.stripe_cycles(100), 132);
        assert_eq!(a.stripes(320), 10);
        assert_eq!(a.stripes(1), 1);
        assert_eq!(a.stripes(33), 2);
    }

    #[test]
    fn cycles_to_seconds() {
        let a = ArrayConfig::fpga();
        assert!((a.cycles_to_seconds(150_000_000) - 1.0).abs() < 1e-9);
        let b = ArrayConfig::asic();
        assert!((b.cycles_to_seconds(1_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn validate_rejects_zero_pe() {
        ArrayConfig {
            num_pe: 0,
            freq_hz: 1.0,
            tile_overhead_cycles: 0,
        }
        .validate();
    }
}
