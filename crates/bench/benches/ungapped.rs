//! Ungapped vs gapped filtering cost — the paper's "200×" claim (§I).
//!
//! "Ungapped filtering ... is used because it is 200× faster than
//! performing gapped alignment, using dynamic programming, in software."
//! This bench times both filters on the same seed hit so the ratio can be
//! read directly off the criterion report.

use align::banded::banded_smith_waterman;
use align::ungapped::ungapped_extend;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use genome::markov::MarkovModel;
use genome::{GapPenalties, Sequence, SubstitutionMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Sequence, Sequence) {
    let mut rng = StdRng::seed_from_u64(3);
    let model = MarkovModel::genome_like();
    // A shared 200-base core so the ungapped filter does real extension
    // work rather than dying instantly.
    let core = model.generate(200, &mut rng);
    let mut target = model.generate(60, &mut rng);
    target.extend(core.iter());
    target.extend(model.generate(60, &mut rng).iter());
    let mut query = model.generate(60, &mut rng);
    query.extend(core.iter());
    query.extend(model.generate(60, &mut rng).iter());
    (target, query)
}

fn bench_filters(c: &mut Criterion) {
    let (target, query) = setup();
    let w = SubstitutionMatrix::darwin_wga();
    let g = GapPenalties::darwin_wga();

    let mut group = c.benchmark_group("filter_cost");
    group.bench_function("ungapped_xdrop", |b| {
        b.iter(|| {
            ungapped_extend(
                black_box(target.as_slice()),
                black_box(query.as_slice()),
                100,
                100,
                19,
                &w,
                910,
            )
        })
    });
    group.bench_function("gapped_bsw_tile", |b| {
        b.iter(|| {
            banded_smith_waterman(
                black_box(target.as_slice()),
                black_box(query.as_slice()),
                &w,
                &g,
                32,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
