//! All-vs-all pair planning with optional kNN sparsification.
//!
//! The joblist is the orchestrator's unit of truth: every unordered
//! genome pair `(a, b)` with `a < b`, in index order, each carrying its
//! sketch proximity and a `scheduled` flag. With `knn = None` every
//! pair is scheduled (classic all-vs-all). With `knn = Some(k)` a pair
//! is scheduled when *either* endpoint ranks the other among its `k`
//! nearest neighbours by shared sketch hashes — the symmetric union,
//! so the kNN graph never isolates a genome another genome considers
//! close. Ties rank by genome index, keeping the joblist a pure
//! function of the input genome list.

use super::mash::Sketch;

/// One unordered genome pair in the all-vs-all matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairPlan {
    /// Lower genome index (the pair's target side).
    pub a: usize,
    /// Higher genome index (the pair's query side).
    pub b: usize,
    /// False when kNN sparsification pruned the pair.
    pub scheduled: bool,
    /// Sketch hashes the two genomes share (higher = closer).
    pub shared: u64,
}

/// Builds the joblist over `sketches.len()` genomes. Pairs are emitted
/// in `(a, b)` lexicographic order — the canonical order every report
/// and resume walk uses.
pub fn build_joblist(sketches: &[Sketch], knn: Option<usize>) -> Vec<PairPlan> {
    let n = sketches.len();
    let mut shared = vec![0u64; n * n];
    for a in 0..n {
        for b in (a + 1)..n {
            let s = sketches[a].shared_with(&sketches[b]);
            shared[a * n + b] = s;
            shared[b * n + a] = s;
        }
    }

    // Directed selection: keeps[a*n + b] == true when b is among a's k
    // nearest. A pair survives when either direction selects it.
    let mut keeps = vec![false; n * n];
    if let Some(k) = knn {
        for a in 0..n {
            let mut others: Vec<usize> = (0..n).filter(|&b| b != a).collect();
            others.sort_by_key(|&b| (std::cmp::Reverse(shared[a * n + b]), b));
            for &b in others.iter().take(k) {
                keeps[a * n + b] = true;
            }
        }
    }

    let mut plans = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            plans.push(PairPlan {
                a,
                b,
                scheduled: knn.is_none() || keeps[a * n + b] || keeps[b * n + a],
                shared: shared[a * n + b],
            });
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::assembly::Assembly;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sketches_two_clusters() -> Vec<Sketch> {
        // Genomes 0,1 descend from one ancestor; 2,3 from another.
        let mut rng = StdRng::seed_from_u64(21);
        let c1 = SyntheticPair::generate(8_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let c2 = SyntheticPair::generate(8_000, &EvolutionParams::at_distance(0.1), &mut rng);
        [
            c1.target.sequence.clone(),
            c1.query.sequence.clone(),
            c2.target.sequence.clone(),
            c2.query.sequence.clone(),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, seq)| {
            let mut a = Assembly::new(format!("g{i}"));
            a.push("chr", seq);
            Sketch::of_assembly(&a)
        })
        .collect()
    }

    #[test]
    fn all_pairs_without_knn() {
        let sketches = sketches_two_clusters();
        let plans = build_joblist(&sketches, None);
        assert_eq!(plans.len(), 6);
        assert!(plans.iter().all(|p| p.scheduled));
        // Canonical (a, b) order.
        let order: Vec<(usize, usize)> = plans.iter().map(|p| (p.a, p.b)).collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn knn_keeps_cluster_mates_drops_cross_cluster() {
        let sketches = sketches_two_clusters();
        let plans = build_joblist(&sketches, Some(1));
        let scheduled: Vec<(usize, usize)> = plans
            .iter()
            .filter(|p| p.scheduled)
            .map(|p| (p.a, p.b))
            .collect();
        assert!(scheduled.contains(&(0, 1)), "cluster A mates kept: {scheduled:?}");
        assert!(scheduled.contains(&(2, 3)), "cluster B mates kept: {scheduled:?}");
        assert!(
            !scheduled.contains(&(0, 2)) && !scheduled.contains(&(1, 3)),
            "cross-cluster pairs pruned: {scheduled:?}"
        );
    }

    #[test]
    fn knn_union_is_symmetric() {
        let sketches = sketches_two_clusters();
        // With k >= n-1 every pair is somebody's neighbour.
        let plans = build_joblist(&sketches, Some(3));
        assert!(plans.iter().all(|p| p.scheduled));
    }
}
