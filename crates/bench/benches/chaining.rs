//! AXTCHAIN-style chaining throughput.

use align::{AlignOp, Alignment, Cigar};
use chain::chainer::chain_alignments;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_alignments(n: usize, seed: u64) -> Vec<Alignment> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let (mut t, mut q) = (0usize, 0usize);
    for _ in 0..n {
        t += rng.gen_range(50..5_000);
        q += rng.gen_range(50..5_000);
        let len = rng.gen_range(50..500) as u32;
        let mut c = Cigar::new();
        c.push(AlignOp::Match, len);
        let score = len as i64 * 90;
        out.push(Alignment::new(t, q, c, score));
        t += len as usize;
        q += len as usize;
    }
    out
}

fn bench_chaining(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaining");
    for n in [100usize, 500, 2000] {
        let alignments = synthetic_alignments(n, 11);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &alignments, |b, a| {
            b.iter(|| chain_alignments(black_box(a), 3000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaining);
criterion_main!(benches);
