//! Deterministic, seedable fault injection for chaos testing.
//!
//! A [`FaultPlan`] (`--fault-plan plan.json` / `WGA_FAULT_PLAN`) names
//! *hook points* in the pipeline — FASTA reads, journal appends/fsyncs,
//! bounded-queue pushes/pops, filter batches, extension tiles, and the
//! metrics/trace sinks — and for each hook lists which occurrences to
//! fail and how: an error return, an injected panic, artificial
//! latency, or a short write. The [`FaultInjector`] built from the plan
//! is threaded through every executor via [`crate::obs::Obs`], so the
//! same plan perturbs the serial, barrier and dataflow drivers at the
//! same logical points.
//!
//! # Determinism
//!
//! Occurrences are counted per `(hook, pair)`, and the retry budget for
//! injected errors is shared per `(hook, pair)` across *all* worker
//! threads touching that pair. Given the same plan and seed, every
//! executor therefore injects the same number of faults, burns the same
//! number of retries, and fails the same pairs — the chaos-determinism
//! acceptance gate (`tests/chaos.rs`) compares `canonical_text` across
//! all three executors byte for byte. Backoff delays come from
//! [`crate::supervise::RetryPolicy`] (integer-only splitmix64 jitter);
//! this module never reads a wall clock, so it sits in the linter's
//! `[determinism]` set.
//!
//! Every injection is recorded as a [`crate::obs::SpanName::Fault`]
//! span (`seq` = hook code, `items` = occurrence index, `cells` = kind
//! code), so a chaos run is auditable from its trace.

use crate::error::{WgaError, WgaResult};
use crate::journal::json::{self, Json};
use crate::obs::Obs;
use crate::supervise::RetryPolicy;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

/// Pair id used for hooks with no chromosome-pair context (FASTA reads,
/// metrics/trace sinks).
pub const PAIRLESS: u64 = u64::MAX;

/// The named points where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hook {
    /// Opening/parsing an input FASTA (CLI `read_assembly`).
    FastaRead,
    /// Appending a pair record to the checkpoint journal.
    JournalAppend,
    /// Fsyncing the checkpoint journal after an append.
    JournalSync,
    /// Pushing into a dataflow bounded queue.
    QueuePush,
    /// Popping from a dataflow bounded queue.
    QueuePop,
    /// Executing one filter batch (serial: one per strand).
    FilterBatch,
    /// Extending one anchor in the extension stage.
    ExtendTile,
    /// Writing the `--metrics-out` artifact.
    MetricsSink,
    /// Writing the `--trace-out` artifact.
    TraceSink,
}

impl Hook {
    /// Every hook, in wire-code order.
    pub const ALL: [Hook; 9] = [
        Hook::FastaRead,
        Hook::JournalAppend,
        Hook::JournalSync,
        Hook::QueuePush,
        Hook::QueuePop,
        Hook::FilterBatch,
        Hook::ExtendTile,
        Hook::MetricsSink,
        Hook::TraceSink,
    ];

    /// The plan-file spelling of the hook.
    pub fn as_str(self) -> &'static str {
        match self {
            Hook::FastaRead => "fasta.read",
            Hook::JournalAppend => "journal.append",
            Hook::JournalSync => "journal.sync",
            Hook::QueuePush => "queue.push",
            Hook::QueuePop => "queue.pop",
            Hook::FilterBatch => "filter.batch",
            Hook::ExtendTile => "extend.tile",
            Hook::MetricsSink => "metrics.sink",
            Hook::TraceSink => "trace.sink",
        }
    }

    /// Parses the plan-file spelling.
    pub fn parse(s: &str) -> Option<Hook> {
        Hook::ALL.into_iter().find(|h| h.as_str() == s)
    }

    /// Stable numeric code (index into [`Hook::ALL`]), used as the
    /// `seq` field of fault spans and as the backoff site key.
    pub fn code(self) -> u64 {
        Hook::ALL
            .iter()
            .position(|h| *h == self)
            .map_or(0, |i| i as u64)
    }
}

/// What an injected fault does at its hook point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation returns an error (supervised: retried with
    /// backoff, then the pair fails).
    Error,
    /// The operation panics (exercises the batch/pair panic
    /// containment of the executors).
    Panic,
    /// The operation stalls for `ms` milliseconds before succeeding
    /// (exercises the watchdog; interruptible via [`FaultInjector::request_abort`]).
    Latency,
    /// A sink write stops halfway through (exercises atomic-write
    /// crash safety); behaves like [`FaultKind::Error`] elsewhere.
    ShortWrite,
}

impl FaultKind {
    /// Every kind, in wire-code order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Error,
        FaultKind::Panic,
        FaultKind::Latency,
        FaultKind::ShortWrite,
    ];

    /// The plan-file spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Panic => "panic",
            FaultKind::Latency => "latency",
            FaultKind::ShortWrite => "short-write",
        }
    }

    /// Parses the plan-file spelling.
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Stable numeric code (index into [`FaultKind::ALL`]), the
    /// `cells` field of fault spans.
    pub fn code(self) -> u64 {
        FaultKind::ALL
            .iter()
            .position(|k| *k == self)
            .map_or(0, |i| i as u64)
    }
}

/// One rule of a fault plan: inject `kind` at `hook` for the listed
/// `(hook, pair)` occurrence indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Where to inject.
    pub hook: Hook,
    /// What to inject.
    pub kind: FaultKind,
    /// Which occurrences of the hook (per pair) to hit, 0-based.
    pub at: Vec<u64>,
    /// Restrict to one pair id (`None` = every pair, including
    /// [`PAIRLESS`] hooks).
    pub pair: Option<u64>,
    /// Stall duration for [`FaultKind::Latency`], milliseconds.
    pub ms: u64,
}

/// A parsed `--fault-plan` document.
///
/// ```json
/// {"format":"wga-fault-plan","version":1,"seed":42,"faults":[
///   {"hook":"filter.batch","kind":"error","at":[0],"pair":1},
///   {"hook":"journal.append","kind":"latency","at":[0],"ms":25}
/// ]}
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Injection rules, evaluated in order (first match wins).
    pub rules: Vec<FaultRule>,
}

/// Document format tag of a fault-plan file.
pub const PLAN_FORMAT: &str = "wga-fault-plan";
/// Fault-plan schema version this build reads and writes.
pub const PLAN_VERSION: i128 = 1;

impl FaultPlan {
    /// Parses a fault-plan JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`WgaError::Config`] on malformed JSON, a wrong
    /// format/version tag, or an unknown hook/kind name.
    pub fn parse(text: &str) -> WgaResult<FaultPlan> {
        let bad = |msg: String| WgaError::config(format!("fault plan: {msg}"));
        let doc = json::parse(text).map_err(|e| bad(e.to_string()))?;
        if doc.get("format").and_then(Json::as_str) != Some(PLAN_FORMAT) {
            return Err(bad(format!("missing format tag {PLAN_FORMAT:?}")));
        }
        match doc.get("version").and_then(Json::as_int) {
            Some(PLAN_VERSION) => {}
            other => return Err(bad(format!("unsupported version {other:?}"))),
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_int)
            .map_or(0, |s| s as u64);
        let mut rules = Vec::new();
        let faults = doc
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing \"faults\" array".to_string()))?;
        for (i, f) in faults.iter().enumerate() {
            let hook_name = f
                .get("hook")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("fault #{i}: missing hook")))?;
            let hook = Hook::parse(hook_name)
                .ok_or_else(|| bad(format!("fault #{i}: unknown hook {hook_name:?}")))?;
            let kind_name = f
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("fault #{i}: missing kind")))?;
            let kind = FaultKind::parse(kind_name)
                .ok_or_else(|| bad(format!("fault #{i}: unknown kind {kind_name:?}")))?;
            let at_arr = f
                .get("at")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(format!("fault #{i}: missing \"at\" array")))?;
            let mut at = Vec::with_capacity(at_arr.len());
            for a in at_arr {
                let v = a
                    .as_int()
                    .ok_or_else(|| bad(format!("fault #{i}: non-integer \"at\" entry")))?;
                at.push(v as u64);
            }
            let pair = f.get("pair").and_then(Json::as_int).map(|p| p as u64);
            let ms = f.get("ms").and_then(Json::as_int).map_or(10, |m| m as u64);
            rules.push(FaultRule {
                hook,
                kind,
                at,
                pair,
                ms,
            });
        }
        Ok(FaultPlan { seed, rules })
    }

    /// Reads and parses a fault-plan file.
    ///
    /// # Errors
    ///
    /// [`WgaError::Io`] if the file is unreadable, otherwise as
    /// [`FaultPlan::parse`].
    pub fn from_file(path: &Path) -> WgaResult<FaultPlan> {
        let text = fs::read_to_string(path)
            .map_err(|e| WgaError::io(format!("fault plan {}", path.display()), e))?;
        FaultPlan::parse(&text)
    }
}

/// Per-pair fault accounting, surfaced into the pair's
/// [`crate::report::FunnelCounters`] (and from there into the journal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairFaults {
    /// Faults injected while computing this pair.
    pub injected: u64,
    /// Supervised retries burned by this pair.
    pub retries: u64,
}

/// Run-scoped injector built from a [`FaultPlan`].
///
/// Shared by reference (via [`Obs`]) across every executor thread; all
/// interior state is behind atomics or mutexes, and lock poisoning is
/// absorbed (`PoisonError::into_inner`) so an injected panic cannot
/// wedge the injector itself.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    policy: RetryPolicy,
    /// Occurrence counters per `(hook code, pair)`.
    occurrences: Mutex<HashMap<(u64, u64), u64>>,
    /// Injected-error attempts per `(hook code, pair)` — shared across
    /// worker threads so the retry budget is executor-independent.
    attempts: Mutex<HashMap<(u64, u64), u32>>,
    /// Per-pair accounting for the journal counters.
    per_pair: Mutex<HashMap<u64, PairFaults>>,
    /// Pairs whose retry budget is exhausted: every further gate on
    /// them aborts immediately, so outer batch-retry machinery cannot
    /// mask the failure.
    poisoned: Mutex<HashSet<u64>>,
    injected_total: AtomicU64,
    retries_total: AtomicU64,
    /// Set by the watchdog (or a test) to cut injected latency short.
    abort: AtomicBool,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FaultInjector {
    /// Builds an injector for one run. `max_retries` comes from
    /// `--max-retries`; the backoff seed comes from the plan.
    pub fn new(plan: FaultPlan, max_retries: u32) -> FaultInjector {
        let policy = RetryPolicy {
            max_retries,
            seed: plan.seed,
            ..RetryPolicy::default()
        };
        FaultInjector {
            plan,
            policy,
            occurrences: Mutex::new(HashMap::new()),
            attempts: Mutex::new(HashMap::new()),
            per_pair: Mutex::new(HashMap::new()),
            poisoned: Mutex::new(HashSet::new()),
            injected_total: AtomicU64::new(0),
            retries_total: AtomicU64::new(0),
            abort: AtomicBool::new(false),
        }
    }

    /// The retry policy (shared with the journal/sink `retry_io`
    /// wrappers so all supervised retries pace identically).
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Consumes the next `(hook, pair)` occurrence and returns the
    /// matching fault, if any. Counts the injection.
    ///
    /// This is the raw primitive; most callers want [`FaultInjector::gate`]
    /// or [`FaultInjector::gate_io`]. `durable` uses it directly to
    /// implement short writes.
    pub fn probe(&self, hook: Hook, pair: u64) -> Option<(FaultKind, u64)> {
        let occ = {
            let mut occs = locked(&self.occurrences);
            let slot = occs.entry((hook.code(), pair)).or_insert(0);
            let occ = *slot;
            *slot += 1;
            occ
        };
        let hit = self.plan.rules.iter().find(|r| {
            r.hook == hook && r.pair.unwrap_or(pair) == pair && r.at.contains(&occ)
        })?;
        self.injected_total.fetch_add(1, Ordering::Relaxed);
        Some((hit.kind, hit.ms))
    }

    /// Records one injection against `pair`'s journal counters.
    fn count_pair_injection(&self, pair: u64) {
        locked(&self.per_pair).entry(pair).or_default().injected += 1;
    }

    /// Counts one supervised retry (global + per-pair).
    pub fn count_retry(&self, pair: u64) {
        self.retries_total.fetch_add(1, Ordering::Relaxed);
        locked(&self.per_pair).entry(pair).or_default().retries += 1;
    }

    /// Whether `pair`'s injected-error retry budget is exhausted.
    pub fn is_poisoned(&self, pair: u64) -> bool {
        locked(&self.poisoned).contains(&pair)
    }

    fn poison(&self, pair: u64) {
        locked(&self.poisoned).insert(pair);
    }

    /// Takes (and clears) the per-pair fault accounting for `pair`.
    pub fn take_pair(&self, pair: u64) -> PairFaults {
        locked(&self.per_pair).remove(&pair).unwrap_or_default()
    }

    /// Run totals: `(faults_injected, retries)`.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.injected_total.load(Ordering::Relaxed),
            self.retries_total.load(Ordering::Relaxed),
        )
    }

    /// Asks in-flight injected latency to end early (the watchdog's
    /// escalation path; sleeping hooks then abort their pair).
    pub fn request_abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Whether [`FaultInjector::request_abort`] has fired.
    pub fn abort_requested(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Sleeps `ms` in slices, returning `true` if cut short by
    /// [`FaultInjector::request_abort`].
    fn sleep_sliced(&self, ms: u64) -> bool {
        let mut remaining = ms;
        while remaining > 0 {
            if self.abort_requested() {
                return true;
            }
            let slice = remaining.min(10);
            thread::sleep(Duration::from_millis(slice));
            remaining -= slice;
        }
        self.abort_requested()
    }

    /// Compute-stage gate (filter batches, extension tiles). Injected
    /// errors are retried internally with the supervised backoff; when
    /// the shared `(hook, pair)` retry budget is exhausted the pair is
    /// poisoned and the gate aborts it by panicking — every executor
    /// already contains pair-level panics, so the pair lands as
    /// `Failed` identically on the serial, barrier and dataflow paths.
    ///
    /// # Panics
    ///
    /// By design: for [`FaultKind::Panic`] injections, on retry-budget
    /// exhaustion, and when the watchdog aborts an injected stall.
    pub fn gate(&self, hook: Hook, obs: &Obs<'_>) {
        let pair = obs.pair();
        if self.is_poisoned(pair) {
            // lint: allow(panics): poisoned-pair gates must abort the pair like the original exhaustion did, or outer batch retries would mask it
            panic!(
                "injected fault: {} pair {pair}: retries exhausted",
                hook.as_str()
            );
        }
        loop {
            let Some((kind, ms)) = self.probe(hook, pair) else {
                return;
            };
            self.count_pair_injection(pair);
            obs.fault_span(hook.code(), kind.code());
            match kind {
                FaultKind::Latency => {
                    if self.sleep_sliced(ms) {
                        self.poison(pair);
                        // lint: allow(panics): watchdog-aborted stall — the pair must fail, not resume half-stalled
                        panic!(
                            "injected fault: {} pair {pair}: stall aborted by watchdog",
                            hook.as_str()
                        );
                    }
                    return;
                }
                FaultKind::Panic => {
                    // lint: allow(panics): the injected panic itself — exercises the executors' panic containment
                    panic!("injected fault: {} pair {pair}: panic", hook.as_str());
                }
                FaultKind::Error | FaultKind::ShortWrite => {
                    let attempt = {
                        let mut attempts = locked(&self.attempts);
                        let slot = attempts.entry((hook.code(), pair)).or_insert(0);
                        let attempt = *slot;
                        *slot += 1;
                        attempt
                    };
                    if attempt >= self.policy.max_retries {
                        self.poison(pair);
                        // lint: allow(panics): retry budget exhausted — escalate to a pair-level failure on every executor
                        panic!(
                            "injected fault: {} pair {pair}: retries exhausted",
                            hook.as_str()
                        );
                    }
                    self.count_retry(pair);
                    self.policy
                        .sleep_backoff((hook.code() << 32) | (pair & 0xFFFF_FFFF), attempt);
                }
            }
        }
    }

    /// I/O gate (journal appends/fsyncs, queue operations): injected
    /// faults surface as an error return for the caller's own
    /// supervised-retry wrapper; latency sleeps in place. Never
    /// panics except for explicit [`FaultKind::Panic`] rules.
    ///
    /// # Errors
    ///
    /// [`WgaError::Io`] for `error`/`short-write` injections (and for
    /// watchdog-aborted stalls).
    ///
    /// # Panics
    ///
    /// Only for [`FaultKind::Panic`] injections.
    pub fn gate_io(&self, hook: Hook, pair: u64, obs: Option<&Obs<'_>>) -> WgaResult<()> {
        let Some((kind, ms)) = self.probe(hook, pair) else {
            return Ok(());
        };
        if let Some(obs) = obs {
            obs.fault_span(hook.code(), kind.code());
        }
        let injected =
            |msg: &str| WgaError::io(hook.as_str(), io::Error::other(format!("injected {msg}")));
        match kind {
            FaultKind::Latency => {
                if self.sleep_sliced(ms) {
                    return Err(injected("stall aborted by watchdog"));
                }
                Ok(())
            }
            FaultKind::Panic => {
                // lint: allow(panics): the injected panic itself — exercises the executors' panic containment
                panic!("injected fault: {} pair {pair}: panic", hook.as_str());
            }
            FaultKind::Error => Err(injected("I/O error")),
            FaultKind::ShortWrite => Err(injected("short write")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rules: &str) -> FaultPlan {
        FaultPlan::parse(&format!(
            "{{\"format\":\"wga-fault-plan\",\"version\":1,\"seed\":7,\"faults\":[{rules}]}}"
        ))
        .expect("plan parses")
    }

    #[test]
    fn plan_parses_and_rejects() {
        let p = plan(
            "{\"hook\":\"filter.batch\",\"kind\":\"error\",\"at\":[0,2],\"pair\":1},\
             {\"hook\":\"journal.append\",\"kind\":\"latency\",\"at\":[0],\"ms\":25}",
        );
        assert_eq!(p.seed, 7);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].hook, Hook::FilterBatch);
        assert_eq!(p.rules[0].kind, FaultKind::Error);
        assert_eq!(p.rules[0].at, vec![0, 2]);
        assert_eq!(p.rules[0].pair, Some(1));
        assert_eq!(p.rules[1].ms, 25);
        assert_eq!(p.rules[1].pair, None);

        assert!(FaultPlan::parse("{}").is_err());
        assert!(FaultPlan::parse(
            "{\"format\":\"wga-fault-plan\",\"version\":9,\"faults\":[]}"
        )
        .is_err());
        assert!(FaultPlan::parse(
            "{\"format\":\"wga-fault-plan\",\"version\":1,\"faults\":[{\"hook\":\"nope\",\"kind\":\"error\",\"at\":[0]}]}"
        )
        .is_err());
    }

    #[test]
    fn hook_and_kind_names_round_trip() {
        for h in Hook::ALL {
            assert_eq!(Hook::parse(h.as_str()), Some(h));
        }
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(Hook::parse("bogus"), None);
    }

    #[test]
    fn probe_counts_occurrences_per_pair() {
        let inj = FaultInjector::new(
            plan("{\"hook\":\"extend.tile\",\"kind\":\"error\",\"at\":[1]}"),
            1,
        );
        // Occurrence 0 misses, occurrence 1 hits — independently per pair.
        assert!(inj.probe(Hook::ExtendTile, 0).is_none());
        assert!(inj.probe(Hook::ExtendTile, 3).is_none());
        assert_eq!(
            inj.probe(Hook::ExtendTile, 0),
            Some((FaultKind::Error, 10))
        );
        assert_eq!(
            inj.probe(Hook::ExtendTile, 3),
            Some((FaultKind::Error, 10))
        );
        assert!(inj.probe(Hook::ExtendTile, 0).is_none());
        assert_eq!(inj.totals(), (2, 0));
    }

    #[test]
    fn gate_io_errors_then_clears() {
        let inj = FaultInjector::new(
            plan("{\"hook\":\"journal.append\",\"kind\":\"error\",\"at\":[0],\"pair\":2}"),
            1,
        );
        assert!(inj.gate_io(Hook::JournalAppend, 2, None).is_err());
        assert!(inj.gate_io(Hook::JournalAppend, 2, None).is_ok());
        assert!(inj.gate_io(Hook::JournalAppend, 1, None).is_ok());
    }

    #[test]
    fn gate_retries_then_survives() {
        let mut inj = FaultInjector::new(
            plan("{\"hook\":\"filter.batch\",\"kind\":\"error\",\"at\":[0]}"),
            2,
        );
        // No-sleep policy keeps the test fast.
        inj.policy.base_ms = 0;
        inj.policy.cap_ms = 0;
        let obs = Obs::off().with_pair(5).with_fault(Some(&inj));
        obs.fault_gate(Hook::FilterBatch);
        assert_eq!(inj.totals(), (1, 1));
        assert!(!inj.is_poisoned(5));
        assert_eq!(inj.take_pair(5), PairFaults {
            injected: 1,
            retries: 1
        });
    }

    #[test]
    fn gate_exhaustion_poisons_and_panics() {
        let mut inj = FaultInjector::new(
            plan("{\"hook\":\"filter.batch\",\"kind\":\"error\",\"at\":[0,1]}"),
            1,
        );
        inj.policy.base_ms = 0;
        inj.policy.cap_ms = 0;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let obs = Obs::off().with_pair(0).with_fault(Some(&inj));
            obs.fault_gate(Hook::FilterBatch);
        }));
        assert!(caught.is_err(), "exhaustion must abort the pair");
        assert!(inj.is_poisoned(0));
        assert_eq!(inj.totals(), (2, 1), "two injections, one retry");
        // A later gate on the poisoned pair aborts immediately.
        let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let obs = Obs::off().with_pair(0).with_fault(Some(&inj));
            obs.fault_gate(Hook::FilterBatch);
        }));
        assert!(again.is_err());
        assert_eq!(inj.totals(), (2, 1), "poisoned fast path injects nothing");
    }

    #[test]
    fn latency_gate_sleeps_and_can_abort() {
        let inj = FaultInjector::new(
            plan("{\"hook\":\"queue.pop\",\"kind\":\"latency\",\"at\":[0],\"ms\":5}"),
            1,
        );
        assert!(inj.gate_io(Hook::QueuePop, 0, None).is_ok());
        let inj2 = FaultInjector::new(
            plan("{\"hook\":\"queue.pop\",\"kind\":\"latency\",\"at\":[0],\"ms\":60000}"),
            1,
        );
        inj2.request_abort();
        assert!(inj2.gate_io(Hook::QueuePop, 0, None).is_err());
    }
}
