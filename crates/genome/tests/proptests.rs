//! Property-based tests for the genome substrate.

use genome::shuffle::shuffle_dinucleotides;
use genome::stats::{BaseCounts, DinucleotideCounts};
use genome::{Base, Sequence};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base_strategy() -> impl Strategy<Value = Base> {
    prop_oneof![
        10 => Just(Base::A),
        10 => Just(Base::C),
        10 => Just(Base::G),
        10 => Just(Base::T),
        1 => Just(Base::N),
    ]
}

fn sequence_strategy(max_len: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(base_strategy(), 0..max_len).prop_map(Sequence::from_bases)
}

proptest! {
    #[test]
    fn reverse_complement_is_involution(seq in sequence_strategy(300)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn reverse_complement_preserves_length_and_swaps_composition(seq in sequence_strategy(300)) {
        let rc = seq.reverse_complement();
        prop_assert_eq!(rc.len(), seq.len());
        let fwd = BaseCounts::from_sequence(&seq);
        let rev = BaseCounts::from_sequence(&rc);
        prop_assert_eq!(fwd.count(Base::A), rev.count(Base::T));
        prop_assert_eq!(fwd.count(Base::C), rev.count(Base::G));
        prop_assert_eq!(fwd.count(Base::N), rev.count(Base::N));
    }

    #[test]
    fn packed3_round_trip(seq in sequence_strategy(500)) {
        let (packed, len) = seq.to_packed3();
        prop_assert_eq!(Sequence::from_packed3(&packed, len), seq);
    }

    #[test]
    fn display_parse_round_trip(seq in sequence_strategy(300)) {
        let text = seq.to_string();
        let parsed: Sequence = text.parse().unwrap();
        prop_assert_eq!(parsed, seq);
    }

    #[test]
    fn fasta_round_trip(seq in sequence_strategy(400)) {
        let records = vec![genome::fasta::Record {
            name: "prop".into(),
            description: "prop test".into(),
            sequence: seq.clone(),
        }];
        let mut buf = Vec::new();
        genome::fasta::write(&mut buf, &records).unwrap();
        let parsed = genome::fasta::read(&buf[..]).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].sequence, &seq);
    }

    #[test]
    fn shuffle_preserves_dinucleotide_counts(seq in sequence_strategy(400), rng_seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let shuffled = shuffle_dinucleotides(&seq, &mut rng);
        prop_assert_eq!(shuffled.len(), seq.len());
        prop_assert_eq!(
            DinucleotideCounts::from_sequence(&shuffled),
            DinucleotideCounts::from_sequence(&seq)
        );
    }

    #[test]
    fn base_codes_round_trip(code in 0u8..8) {
        let b = Base::from_code(code);
        if code < 4 {
            prop_assert_eq!(b.code(), code);
        } else {
            prop_assert_eq!(b, Base::N);
        }
    }
}
