//! Lock-free log2-bucketed histograms.
//!
//! A [`Log2Histogram`] sorts `u64` samples into power-of-two buckets:
//! bucket 0 holds the value `0`, and bucket `b` (for `b >= 1`) holds
//! values in `[2^(b-1), 2^b - 1]`. That gives 65 buckets covering the
//! full `u64` range with a single `leading_zeros` instruction per
//! sample and one relaxed atomic increment — cheap enough to sit on
//! the per-tile filter path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-size log2 histogram over `u64` samples.
///
/// All operations use relaxed atomics; concurrent `observe` calls never
/// block and the snapshot is only guaranteed consistent once the
/// writers have quiesced (which is how the recorder uses it: histograms
/// are rendered after the run finishes).
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample: `0 -> 0`, otherwise `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Smallest value that lands in `bucket` (the bucket's lower bound).
    pub fn bucket_lower_bound(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sparse snapshot: `(bucket_index, count)` for every non-empty
    /// bucket, in ascending bucket order.
    pub fn snapshot(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then_some((idx, count))
            })
            .collect()
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Zero gets its own bucket.
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        // Bucket b covers [2^(b-1), 2^b - 1].
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        assert_eq!(Log2Histogram::bucket_index(1 << 20), 21);
        assert_eq!(Log2Histogram::bucket_index((1 << 21) - 1), 21);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_index(1 << 63), 64);
    }

    #[test]
    fn lower_bounds_invert_bucket_index() {
        for bucket in 0..LOG2_BUCKETS {
            let lo = Log2Histogram::bucket_lower_bound(bucket);
            assert_eq!(Log2Histogram::bucket_index(lo), bucket, "bucket {bucket}");
            if lo > 0 {
                // One below the lower bound falls in the previous bucket.
                assert_eq!(Log2Histogram::bucket_index(lo - 1), bucket - 1);
            }
        }
    }

    #[test]
    fn observe_and_snapshot() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.snapshot(), vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
    }
}
