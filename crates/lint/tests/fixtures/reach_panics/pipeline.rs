//! Reachability fixture: one panic site two calls deep from the entry
//! point (hard violation with its chain) and one in an orphan fn
//! nothing calls (baseline-eligible).

pub fn execute() {
    stage_a();
}

fn stage_a() {
    stage_b();
}

fn stage_b() {
    let v: Vec<u32> = vec![1];
    let _ = v.first().unwrap();
}

pub fn orphan() {
    let x: Option<u32> = None;
    let _ = x.unwrap();
}
