//! Pluggable BSW filter engines: scalar reference, batched wavefront,
//! and explicit SIMD.
//!
//! The filtering stage dominates pipeline runtime (§III-A), so it gets
//! three interchangeable implementations behind the [`FilterEngine`]
//! trait:
//!
//! * [`ScalarFilterEngine`] calls the row-major reference kernel
//!   ([`align::banded`]) per hit, allocating DP rows per tile — simple,
//!   and the oracle everything else is measured against;
//! * [`BatchedFilterEngine`] drives [`align::bsw_fast`]: the chromosome
//!   pair is byte-encoded **once** into a shared [`BswBatch`]
//!   ([`FilterContext`]), and each worker reuses one
//!   [`WavefrontScratch`] across its whole batch of tiles — the software
//!   analogue of streaming tiles through the paper's systolic array;
//! * [`SimdFilterEngine`] drives [`align::bsw_simd`]: the same wavefront
//!   with the inner loop as explicit saturating `i16` vector lanes
//!   (8 per SSE2 vector, 16 per AVX2 vector), falling back per tile to
//!   the exact `i32` kernel when a tile could overflow 16 bits, and
//!   falling back entirely to the batched engine on hosts without
//!   x86-64 SIMD.
//!
//! All produce bit-identical [`FilterOutcome`]s (same scores, anchor
//! coordinates and cell counts); `tests/bsw_differential.rs` enforces
//! this over thousands of random and adversarial tiles. Selection is via
//! [`WgaParams::filter_engine`] / the CLI's `--filter-engine` flag.
//!
//! Usage shape (what [`crate::pipeline`] and [`crate::parallel`] do):
//! build one [`FilterContext`] per chromosome pair and strand, share it
//! read-only across workers, and have each worker materialise its own
//! engine with [`FilterContext::engine`] for the batch of hits it owns.

use crate::config::{FilterEngineKind, FilterStage, WgaParams};
use crate::stages::{gapped_outcome, run_filter, FilterOutcome};
use align::banded::tile_around;
use align::bsw_fast::{BswBatch, WavefrontScratch};
use align::bsw_simd::{BswSimdBatch, SimdScratch};
use genome::Sequence;
use seed::SeedHit;

/// One BSW filter implementation, stateful per worker.
///
/// Implementations may keep mutable scratch (the batched engine's
/// wavefront buffers), which is why filtering takes `&mut self`; create
/// one engine per worker/batch via [`FilterContext::engine`].
pub trait FilterEngine {
    /// Filters one seed hit, returning the anchor (if the tile passed
    /// the threshold) and the DP cells evaluated.
    fn filter_hit(
        &mut self,
        params: &WgaParams,
        target: &Sequence,
        query: &Sequence,
        hit: SeedHit,
    ) -> FilterOutcome;
}

/// Reference engine: per-hit scalar BSW (or ungapped extension),
/// delegating to [`crate::stages::run_filter`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarFilterEngine;

impl FilterEngine for ScalarFilterEngine {
    fn filter_hit(
        &mut self,
        params: &WgaParams,
        target: &Sequence,
        query: &Sequence,
        hit: SeedHit,
    ) -> FilterOutcome {
        run_filter(params, target, query, hit)
    }
}

/// Batched wavefront engine: tiles run against a shared pre-encoded
/// [`BswBatch`] with this engine's private reusable scratch.
#[derive(Debug)]
pub struct BatchedFilterEngine<'c> {
    batch: &'c BswBatch,
    scratch: WavefrontScratch,
}

impl FilterEngine for BatchedFilterEngine<'_> {
    fn filter_hit(
        &mut self,
        params: &WgaParams,
        target: &Sequence,
        query: &Sequence,
        hit: SeedHit,
    ) -> FilterOutcome {
        match params.filter {
            FilterStage::Gapped(f) => {
                let (t_range, q_range) = tile_around(
                    hit.target_pos,
                    hit.query_pos,
                    f.tile_size,
                    target.len(),
                    query.len(),
                );
                let (t0, q0) = (t_range.start, q_range.start);
                let out = self.batch.run_tile(t_range, q_range, &mut self.scratch);
                gapped_outcome(&f, t0, q0, out)
            }
            // The batched kernel only accelerates the gapped DP; an
            // ungapped filter stage falls back to the reference path.
            FilterStage::Ungapped(_) => run_filter(params, target, query, hit),
        }
    }
}

/// Explicit-SIMD wavefront engine: tiles run against a shared
/// pre-encoded [`BswSimdBatch`] with this engine's private reusable
/// scratch; oversized tiles route to the exact `i32` kernel inside the
/// batch.
#[derive(Debug)]
pub struct SimdFilterEngine<'c> {
    batch: &'c BswSimdBatch,
    scratch: SimdScratch,
}

impl FilterEngine for SimdFilterEngine<'_> {
    fn filter_hit(
        &mut self,
        params: &WgaParams,
        target: &Sequence,
        query: &Sequence,
        hit: SeedHit,
    ) -> FilterOutcome {
        match params.filter {
            FilterStage::Gapped(f) => {
                let (t_range, q_range) = tile_around(
                    hit.target_pos,
                    hit.query_pos,
                    f.tile_size,
                    target.len(),
                    query.len(),
                );
                let (t0, q0) = (t_range.start, q_range.start);
                let out = self.batch.run_tile(t_range, q_range, &mut self.scratch);
                gapped_outcome(&f, t0, q0, out)
            }
            // The SIMD kernel only accelerates the gapped DP; an
            // ungapped filter stage falls back to the reference path.
            FilterStage::Ungapped(_) => run_filter(params, target, query, hit),
        }
    }
}

/// The shared state behind a [`FilterContext`]: which engine family the
/// run selected, with its pre-encoded pair where one exists.
#[derive(Debug, Default)]
enum ContextState {
    /// Scalar engine (or an ungapped stage): no shared state needed.
    #[default]
    Scalar,
    Batched(BswBatch),
    Simd(BswSimdBatch),
}

/// Shared per-(pair, strand) filter state, built once and handed
/// read-only to every filter worker.
///
/// Holds the byte-encoded chromosome pair when the batched or SIMD
/// engine is selected for a gapped filter stage (nothing otherwise —
/// scalar filtering needs no shared state). `FilterContext` is `Sync`,
/// so the parallel driver builds it outside the thread scope and each
/// worker calls [`FilterContext::engine`] to get its own mutable engine.
#[derive(Debug, Default)]
pub struct FilterContext {
    state: ContextState,
}

impl FilterContext {
    /// Prepares shared filter state for one chromosome pair and strand.
    ///
    /// Encoding is `O(|target| + |query|)` and happens only when
    /// `params` select the batched or SIMD engine on a gapped filter
    /// stage. A SIMD request on a host without x86-64 SIMD builds the
    /// batched context instead (the documented runtime fallback — the
    /// engines are bit-identical, so only throughput changes).
    pub fn new(params: &WgaParams, target: &Sequence, query: &Sequence) -> FilterContext {
        let state = match (params.filter_engine, params.filter) {
            (FilterEngineKind::Batched, FilterStage::Gapped(f)) => {
                ContextState::Batched(BswBatch::new(
                    target.as_slice(),
                    query.as_slice(),
                    &params.scoring,
                    &params.gaps,
                    f.band,
                ))
            }
            (FilterEngineKind::Simd, FilterStage::Gapped(f)) => {
                let batch = BswSimdBatch::new(
                    target.as_slice(),
                    query.as_slice(),
                    &params.scoring,
                    &params.gaps,
                    f.band,
                );
                if batch.lanes() > 0 {
                    ContextState::Simd(batch)
                } else {
                    ContextState::Batched(BswBatch::new(
                        target.as_slice(),
                        query.as_slice(),
                        &params.scoring,
                        &params.gaps,
                        f.band,
                    ))
                }
            }
            _ => ContextState::Scalar,
        };
        FilterContext { state }
    }

    /// Materialises a fresh engine for one worker's batch of hits.
    ///
    /// Batched and SIMD contexts yield their engine with its own
    /// scratch; scalar contexts yield the stateless
    /// [`ScalarFilterEngine`].
    pub fn engine(&self) -> Box<dyn FilterEngine + Send + '_> {
        match &self.state {
            ContextState::Batched(batch) => Box::new(BatchedFilterEngine {
                batch,
                scratch: WavefrontScratch::new(),
            }),
            ContextState::Simd(batch) => Box::new(SimdFilterEngine {
                batch,
                scratch: SimdScratch::new(),
            }),
            ContextState::Scalar => Box::new(ScalarFilterEngine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> (Sequence, Sequence) {
        let mut rng = StdRng::seed_from_u64(42);
        let p = SyntheticPair::generate(6000, &EvolutionParams::at_distance(0.25), &mut rng);
        (p.target.sequence, p.query.sequence)
    }

    #[test]
    fn engines_agree_on_every_hit() {
        let (t, q) = pair();
        for params in [
            WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Scalar),
            WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Batched),
            WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Simd),
        ] {
            let ctx = FilterContext::new(&params, &t, &q);
            let mut engine = ctx.engine();
            for pos in (0..5800).step_by(190) {
                let hit = SeedHit::new(pos, pos.saturating_sub(3));
                let via_engine = engine.filter_hit(&params, &t, &q, hit);
                let via_scalar = run_filter(&params, &t, &q, hit);
                assert_eq!(via_engine, via_scalar, "hit at {pos}");
            }
        }
    }

    #[test]
    fn scalar_params_build_no_batch_context() {
        let (t, q) = pair();
        let params = WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Scalar);
        let ctx = FilterContext::new(&params, &t, &q);
        assert!(matches!(ctx.state, ContextState::Scalar));
        let params = WgaParams::lastz_baseline();
        let ctx = FilterContext::new(&params, &t, &q);
        assert!(
            matches!(ctx.state, ContextState::Scalar),
            "ungapped stage never builds a batch"
        );
    }

    #[test]
    fn simd_params_build_simd_or_batched_context() {
        let (t, q) = pair();
        let params = WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Simd);
        let ctx = FilterContext::new(&params, &t, &q);
        // On x86-64 the SIMD batch must materialise; elsewhere the
        // documented fallback is the batched engine.
        if cfg!(target_arch = "x86_64") {
            assert!(matches!(ctx.state, ContextState::Simd(_)));
        } else {
            assert!(matches!(ctx.state, ContextState::Batched(_)));
        }
    }

    #[test]
    fn batched_engine_handles_ungapped_fallback() {
        let (t, q) = pair();
        // Batched/SIMD engine requested but the stage is ungapped:
        // behaviour must match the reference path exactly.
        for kind in [FilterEngineKind::Batched, FilterEngineKind::Simd] {
            let params = WgaParams::lastz_baseline().with_filter_engine(kind);
            let ctx = FilterContext::new(&params, &t, &q);
            let mut engine = ctx.engine();
            let hit = SeedHit::new(500, 497);
            assert_eq!(
                engine.filter_hit(&params, &t, &q, hit),
                run_filter(&params, &t, &q, hit)
            );
        }
    }
}
