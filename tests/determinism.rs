//! Determinism and parallel-equivalence integration tests.

use darwin_wga::core::{config::WgaParams, parallel::run_parallel, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::SeedableRng;

fn pair(seed: u64) -> SyntheticPair {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SyntheticPair::generate(30_000, &EvolutionParams::at_distance(0.25), &mut rng)
}

#[test]
fn pipeline_is_deterministic() {
    let pair = pair(5);
    let a = WgaPipeline::new(WgaParams::darwin_wga())
        .run(&pair.target.sequence, &pair.query.sequence);
    let b = WgaPipeline::new(WgaParams::darwin_wga())
        .run(&pair.target.sequence, &pair.query.sequence);
    assert_eq!(a.alignments, b.alignments);
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn parallel_filtering_matches_serial_exactly() {
    let pair = pair(6);
    let params = WgaParams::darwin_wga();
    let serial = WgaPipeline::new(params.clone()).run(&pair.target.sequence, &pair.query.sequence);
    for threads in [2usize, 3, 8] {
        let par = run_parallel(&params, &pair.target.sequence, &pair.query.sequence, threads);
        assert_eq!(serial.alignments, par.alignments, "threads={threads}");
        assert_eq!(serial.workload, par.workload);
    }
}

/// The dataflow producer dispatches pairs smallest-remaining-work
/// first, which on this deliberately lopsided matrix (chromosome sizes
/// 12k / 3k / 6k vs 9k / 2k) is very different from FIFO pair-id
/// order. The canonical report must not notice: the collector
/// assembles results in pair-id order and fault occurrences are scoped
/// per (hook, pair), so scheduling policy is invisible in the output
/// bytes across executors, thread counts and queue depths.
#[test]
fn dataflow_work_order_is_invisible_in_canonical_output() {
    use darwin_wga::core::dataflow::ExecutorKind;
    use darwin_wga::core::genome_pipeline::{align_assemblies_with, AlignOptions};
    use darwin_wga::genome::assembly::Assembly;

    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let params = EvolutionParams::at_distance(0.2);
    let sizes_t = [12_000usize, 3_000, 6_000];
    let sizes_q = [9_000usize, 2_000];
    let mut target = Assembly::new("t");
    let mut query = Assembly::new("q");
    for (i, len) in sizes_t.iter().enumerate() {
        let p = SyntheticPair::generate(*len, &params, &mut rng);
        target.push(format!("chr{i}T"), p.target.sequence.clone());
        if let Some(qlen) = sizes_q.get(i) {
            let pq = SyntheticPair::generate(*qlen, &params, &mut rng);
            query.push(format!("chr{i}Q"), pq.query.sequence.clone());
        }
    }

    let wga = WgaParams::darwin_wga();
    let reference = align_assemblies_with(&wga, &target, &query, &AlignOptions::default())
        .expect("barrier reference run")
        .canonical_text();
    for threads in [1usize, 2, 8] {
        for queue_depth in [1usize, 64] {
            let options = AlignOptions {
                threads,
                executor: ExecutorKind::Dataflow,
                queue_depth,
                ..AlignOptions::default()
            };
            let report = align_assemblies_with(&wga, &target, &query, &options)
                .expect("dataflow run");
            assert_eq!(
                report.canonical_text(),
                reference,
                "dataflow {threads}t depth={queue_depth} diverged from barrier reference"
            );
        }
    }
}

#[test]
fn generation_is_seed_stable_across_calls() {
    let a = pair(7);
    let b = pair(7);
    assert_eq!(a.target.sequence, b.target.sequence);
    assert_eq!(a.query.sequence, b.query.sequence);
    assert_eq!(a.ancestral_conserved, b.ancestral_conserved);
}
