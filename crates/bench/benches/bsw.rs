//! Software banded Smith-Waterman tile throughput — the "Parasail role".
//!
//! The paper estimates the iso-sensitive software baseline from Parasail's
//! 225K tiles/s (36 threads on a c4.8xlarge) for the 320-base, band-32
//! filter tile. This bench measures our own kernel's single-thread rate;
//! Table V's roll-up uses the rate measured live in its own run.

use align::banded::banded_smith_waterman;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use genome::markov::MarkovModel;
use genome::{GapPenalties, SubstitutionMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bsw(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let model = MarkovModel::genome_like();
    let target = model.generate(320, &mut rng);
    let query = model.generate(320, &mut rng);
    let w = SubstitutionMatrix::darwin_wga();
    let g = GapPenalties::darwin_wga();

    let mut group = c.benchmark_group("bsw");
    group.throughput(Throughput::Elements(1));
    group.bench_function("tile_320_band_32", |b| {
        b.iter(|| {
            banded_smith_waterman(
                black_box(target.as_slice()),
                black_box(query.as_slice()),
                &w,
                &g,
                32,
            )
        })
    });
    // Band sweep: cost grows linearly with band width.
    for band in [8usize, 16, 64, 128] {
        group.bench_function(format!("tile_320_band_{band}"), |b| {
            b.iter(|| {
                banded_smith_waterman(
                    black_box(target.as_slice()),
                    black_box(query.as_slice()),
                    &w,
                    &g,
                    band,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bsw);
criterion_main!(benches);
