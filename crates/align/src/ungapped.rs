//! X-drop ungapped extension — the LASTZ filtering stage Darwin-WGA
//! replaces.
//!
//! A seed hit is extended along its diagonal in both directions; extension
//! stops once the running score falls more than `xdrop` below the best
//! score seen (Zhang et al. 2000). No indels are permitted, which is why
//! this filter loses sensitivity on distant species (Fig. 2): the paper's
//! whole premise is that gap-free conserved blocks get shorter than the
//! 30-match threshold as lineages diverge.

use genome::{Base, SubstitutionMatrix};

/// Result of ungapped X-drop extension of one seed hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UngappedOutcome {
    /// Best (maximal) ungapped segment score across the extension.
    pub score: i64,
    /// Target start of the best-scoring segment (inclusive).
    pub target_start: usize,
    /// Target end of the best-scoring segment (exclusive).
    pub target_end: usize,
    /// Query start of the best-scoring segment (inclusive).
    pub query_start: usize,
    /// Target coordinate of the maximum-score prefix end (the anchor
    /// passed to the extension stage on success).
    pub anchor_target: usize,
    /// Query coordinate of the anchor.
    pub anchor_query: usize,
    /// Diagonal cells evaluated (workload accounting).
    pub cells: u64,
}

/// Extends the seed hit starting at `(seed_t, seed_q)` of length
/// `seed_len` along its diagonal in both directions with X-drop
/// termination.
///
/// The returned segment is the maximal-scoring contiguous run covering the
/// seed. Passing a hit to the next stage when `score >= threshold` mirrors
/// LASTZ's `hsp` filter with its default score threshold of 3000.
///
/// # Panics
///
/// Panics if the seed lies outside either sequence.
///
/// # Examples
///
/// ```
/// use genome::{Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "TTTTACGTACGTACGTTTTT".parse()?;
/// let q: Sequence = "GGGGACGTACGTACGTGGGG".parse()?;
/// let out = align::ungapped::ungapped_extend(
///     t.as_slice(), q.as_slice(), 8, 8, 4,
///     &SubstitutionMatrix::darwin_wga(), 500,
/// );
/// assert_eq!(out.target_start, 4);
/// assert_eq!(out.target_end, 16);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn ungapped_extend(
    target: &[Base],
    query: &[Base],
    seed_t: usize,
    seed_q: usize,
    seed_len: usize,
    w: &SubstitutionMatrix,
    xdrop: i32,
) -> UngappedOutcome {
    assert!(
        seed_t + seed_len <= target.len() && seed_q + seed_len <= query.len(),
        "seed outside sequences"
    );
    let mut cells = 0u64;

    // Score of the seed region itself.
    let mut seed_score = 0i64;
    for k in 0..seed_len {
        seed_score += w.score(target[seed_t + k], query[seed_q + k]) as i64;
        cells += 1;
    }

    // Right extension from the end of the seed.
    let right_best;
    let mut right_best_len = 0usize;
    {
        let mut run = 0i64;
        let mut best = 0i64;
        let (mut t, mut q) = (seed_t + seed_len, seed_q + seed_len);
        let mut len = 0usize;
        while t < target.len() && q < query.len() {
            run += w.score(target[t], query[q]) as i64;
            cells += 1;
            len += 1;
            if run > best {
                best = run;
                right_best_len = len;
            }
            if run < best - xdrop as i64 {
                break;
            }
            t += 1;
            q += 1;
        }
        right_best = best;
    }

    // Left extension from the start of the seed.
    let left_best;
    let mut left_best_len = 0usize;
    {
        let mut run = 0i64;
        let mut best = 0i64;
        let mut len = 0usize;
        let (mut t, mut q) = (seed_t, seed_q);
        while t > 0 && q > 0 {
            t -= 1;
            q -= 1;
            run += w.score(target[t], query[q]) as i64;
            cells += 1;
            len += 1;
            if run > best {
                best = run;
                left_best_len = len;
            }
            if run < best - xdrop as i64 {
                break;
            }
        }
        left_best = best;
    }

    let score = seed_score + left_best + right_best;
    let target_start = seed_t - left_best_len;
    let target_end = seed_t + seed_len + right_best_len;
    let query_start = seed_q - left_best_len;
    UngappedOutcome {
        score,
        target_start,
        target_end,
        query_start,
        // The anchor is the last position of the maximal-scoring segment —
        // the position LASTZ hands to its gapped extension stage.
        anchor_target: target_start + (target_end - target_start).saturating_sub(1),
        anchor_query: query_start + (target_end - target_start).saturating_sub(1),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Sequence;

    fn run(t: &str, q: &str, st: usize, sq: usize, len: usize, xdrop: i32) -> UngappedOutcome {
        let t: Sequence = t.parse().unwrap();
        let q: Sequence = q.parse().unwrap();
        ungapped_extend(
            t.as_slice(),
            q.as_slice(),
            st,
            sq,
            len,
            &SubstitutionMatrix::darwin_wga(),
            xdrop,
        )
    }

    #[test]
    fn extends_across_perfect_match() {
        let out = run("ACGTACGTACGT", "ACGTACGTACGT", 4, 4, 4, 500);
        assert_eq!(out.target_start, 0);
        assert_eq!(out.target_end, 12);
        assert_eq!(out.score, 3 * (91 + 100 + 100 + 91));
    }

    #[test]
    fn stops_at_mismatch_wall() {
        let out = run("ACGTACGTCCCCCCCC", "ACGTACGTGGGGGGGG", 0, 0, 4, 150);
        assert_eq!(out.target_end, 8);
        assert_eq!(out.score, 2 * (91 + 100 + 100 + 91));
    }

    #[test]
    fn crosses_isolated_mismatch_when_xdrop_allows() {
        // One mismatch (A vs C, -90) inside a long match run.
        let t = "ACGTACGTAACGTACGT";
        let q = "ACGTACGTCACGTACGT";
        let lenient = run(t, q, 0, 0, 4, 500);
        assert_eq!(lenient.target_end, 17);
        let strict = run(t, q, 0, 0, 4, 50);
        assert_eq!(strict.target_end, 8);
        assert!(lenient.score > strict.score);
    }

    #[test]
    fn an_indel_breaks_ungapped_extension() {
        // Query has 1 inserted base at position 8: diagonals shift, the
        // right half no longer matches on this diagonal.
        let t = "ACGTACGTACGTACGTACGT";
        let q = "ACGTACGTTACGTACGTACG";
        let out = run(t, q, 0, 0, 4, 200);
        assert!(out.target_end <= 10, "extended through an indel");
    }

    #[test]
    fn boundary_seed_at_origin() {
        let out = run("ACGT", "ACGT", 0, 0, 4, 100);
        assert_eq!(out.target_start, 0);
        assert_eq!(out.target_end, 4);
    }

    #[test]
    #[should_panic(expected = "seed outside")]
    fn rejects_out_of_range_seed() {
        run("ACGT", "ACGT", 3, 3, 4, 100);
    }
}
