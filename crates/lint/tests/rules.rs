//! End-to-end rule tests over the fixture crates in
//! `tests/fixtures/`, plus the self-test that the real workspace is
//! clean under the checked-in manifest.
//!
//! Every fixture seeds a known number of violations; each must be
//! detected by exactly its intended rule (ISSUE 5 acceptance).

use std::path::PathBuf;

use wga_lint::{run, Analysis, Config, SiteStatus, RULES};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn analyze(manifest: &str, rules: &[&'static str]) -> Analysis {
    let cfg = Config::parse(fixture_root(), manifest).expect("fixture manifest parses");
    run(&cfg, rules).expect("fixture run succeeds")
}

fn violations(a: &Analysis) -> Vec<&wga_lint::Site> {
    a.sites
        .iter()
        .filter(|s| s.status == SiteStatus::Violation)
        .collect()
}

#[test]
fn panics_fixture_exact_counts() {
    let a = analyze("[scan]\npanics\n", &["panics"]);
    let s = a.stats("panics");
    assert_eq!(s.found, 6, "5 live + 1 waived: {:#?}", a.sites);
    assert_eq!(s.waived, 1);
    assert_eq!(s.baselined, 0);
    assert_eq!(s.violations, 5);
    assert!(a.sites.iter().all(|s| s.rule == "panics"));
    // The five seeded kinds are each present.
    let msgs: Vec<&str> = violations(&a).iter().map(|s| s.msg.as_str()).collect();
    for kind in [".unwrap()", ".expect()", "panic!", "unreachable!", "todo!"] {
        assert!(
            msgs.iter().any(|m| m.starts_with(kind)),
            "missing {kind} in {msgs:?}"
        );
    }
}

#[test]
fn panics_baseline_absorbs_known_sites() {
    let a = analyze(
        "[scan]\npanics\n[baseline panics]\npanics 5\n",
        &["panics"],
    );
    let s = a.stats("panics");
    assert_eq!(s.violations, 0);
    assert_eq!(s.baselined, 5);
    assert_eq!(s.waived, 1);
    assert_eq!(a.baseline_dirs, vec![("panics".to_string(), 5, 5)]);
}

#[test]
fn panics_over_baseline_reports_every_site() {
    let a = analyze(
        "[scan]\npanics\n[baseline panics]\npanics 4\n",
        &["panics"],
    );
    let s = a.stats("panics");
    assert_eq!(s.violations, 5, "over baseline, every site is reported");
    assert!(violations(&a)
        .iter()
        .all(|v| v.msg.contains("5 found > 4 allowed")));
}

#[test]
fn panics_forbidden_ignores_baseline() {
    let a = analyze(
        "[scan]\npanics\n[panics-forbidden]\npanics\n[baseline panics]\npanics 99\n",
        &["panics"],
    );
    let s = a.stats("panics");
    assert_eq!(s.violations, 5);
    assert!(violations(&a)
        .iter()
        .all(|v| v.msg.contains("panic-forbidden")));
}

#[test]
fn determinism_fixture_exact_counts() {
    let a = analyze(
        "[scan]\ndeterminism\n[determinism]\ndeterminism/canonical.rs\n",
        &["determinism"],
    );
    let s = a.stats("determinism");
    assert_eq!(s.found, 7, "{:#?}", a.sites);
    assert_eq!(s.waived, 2);
    assert_eq!(s.violations, 5);
    let msgs: Vec<&str> = violations(&a).iter().map(|s| s.msg.as_str()).collect();
    assert_eq!(
        msgs.iter().filter(|m| m.starts_with("hash iteration")).count(),
        2,
        "{msgs:?}"
    );
    assert_eq!(msgs.iter().filter(|m| m.starts_with("wall clock")).count(), 1);
    assert_eq!(msgs.iter().filter(|m| m.starts_with("float literal")).count(), 1);
    assert_eq!(msgs.iter().filter(|m| m.starts_with("float type")).count(), 1);
}

#[test]
fn determinism_only_runs_on_manifest_modules() {
    // Same scan dir, but the module is not in [determinism]: no sites.
    let a = analyze("[scan]\ndeterminism\n", &["determinism"]);
    assert_eq!(a.stats("determinism").found, 0);
}

#[test]
fn deadlock_clean_chain_is_acyclic() {
    let a = analyze("[scan]\ndeadlock_ok\n[deadlock]\ndeadlock_ok\n", &["deadlock"]);
    assert_eq!(a.queues, 3);
    assert_eq!(a.edges, 2);
    assert_eq!(a.cycles, 0);
    assert_eq!(a.total_violations(), 0, "{:#?}", a.sites);
}

#[test]
fn deadlock_cycle_through_helper_call_detected() {
    let a = analyze(
        "[scan]\ndeadlock_cycle\n[deadlock]\ndeadlock_cycle\n",
        &["deadlock"],
    );
    assert_eq!(a.cycles, 1, "{:#?}", a.sites);
    let v = violations(&a);
    assert_eq!(v.len(), 1);
    assert!(v[0].msg.contains("cycle"));
    assert!(v[0].msg.contains("work_q") && v[0].msg.contains("done_q"));
}

#[test]
fn deadlock_push_under_held_lock_detected() {
    let a = analyze(
        "[scan]\ndeadlock_lock\n[deadlock]\ndeadlock_lock\n",
        &["deadlock"],
    );
    assert_eq!(a.cycles, 0);
    let v = violations(&a);
    assert_eq!(v.len(), 1, "{:#?}", a.sites);
    assert!(v[0].msg.contains("lock guard `slot`"));
    assert_eq!(v[0].file, "deadlock_lock/exec.rs");
}

#[test]
fn hot_loop_fixture_exact_counts() {
    let a = analyze("[scan]\nhot\n", &["hot-loop"]);
    assert_eq!(a.hot_files, 1);
    let s = a.stats("hot-loop");
    assert_eq!(s.found, 4, "{:#?}", a.sites);
    assert_eq!(s.violations, 4);
    let msgs: Vec<&str> = violations(&a).iter().map(|s| s.msg.as_str()).collect();
    for kind in ["Vec::new", ".to_vec()", ".clone()", "format!"] {
        assert!(msgs.iter().any(|m| m.contains(kind)), "missing {kind}");
    }
}

#[test]
fn unsafe_fixture_exact_counts() {
    let a = analyze("[scan]\nunsafe_audit\n", &["unsafe"]);
    let s = a.stats("unsafe");
    assert_eq!(s.found, 2, "annotated block is clean: {:#?}", a.sites);
    assert_eq!(s.waived, 1);
    assert_eq!(s.violations, 1);
}

#[test]
fn each_seeded_violation_hits_exactly_its_intended_rule() {
    let manifest = "
[scan]
panics
determinism
deadlock_ok
deadlock_cycle
deadlock_lock
hot
unsafe_audit
[determinism]
determinism/canonical.rs
[deadlock]
deadlock_cycle
deadlock_lock
";
    let a = analyze(manifest, RULES);
    assert!(a.total_violations() > 0);
    for v in violations(&a) {
        let expected = match v.file.split('/').next().unwrap_or("") {
            "panics" => "panics",
            "determinism" => "determinism",
            "deadlock_cycle" | "deadlock_lock" => "deadlock",
            "hot" => "hot-loop",
            "unsafe_audit" => "unsafe",
            other => panic!("violation in unexpected fixture dir {other}: {v:?}"),
        };
        assert_eq!(
            v.rule, expected,
            "cross-rule contamination at {}:{} — {}",
            v.file, v.line, v.msg
        );
    }
    // And the clean fixture stays clean even in the combined run.
    assert!(violations(&a).iter().all(|v| !v.file.starts_with("deadlock_ok/")));
}

/// The real workspace must be green under the checked-in manifest —
/// the same invariant CI enforces, pinned as a test so `cargo test`
/// alone catches a regression.
#[test]
fn workspace_is_clean_under_checked_in_manifest() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let manifest_path = root.join("scripts/wga-lint.manifest");
    let text = std::fs::read_to_string(&manifest_path).expect("manifest readable");
    let cfg = Config::parse(root, &text).expect("manifest parses");
    let a = run(&cfg, RULES).expect("workspace lint runs");
    let v = violations(&a);
    assert!(
        v.is_empty(),
        "workspace has non-waived lint violations:\n{}",
        v.iter()
            .map(|s| format!("  {}:{} [{}] {}", s.file, s.line, s.rule, s.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The deadlock rule really parsed the dataflow: the three-queue
    // chain must be present and acyclic (since v2 it scans the whole
    // workspace, not just the [deadlock] dirs).
    assert_eq!(a.queues, 3);
    assert_eq!(a.edges, 2);
    assert_eq!(a.cycles, 0);
    // banded.rs + bsw_fast.rs + bsw_simd.rs carry their hot tags.
    assert_eq!(a.hot_files, 3);
    // The call graph actually covered the workspace: entry points
    // resolved and reachability is non-trivial. Loose bounds — exact
    // shapes are pinned by the fixture crates, not the living tree.
    assert!(a.entry_fns >= 8, "entry fns: {}", a.entry_fns);
    assert!(a.reachable_fns > 100, "reachable fns: {}", a.reachable_fns);
    assert!(a.call_edges > 1000, "call edges: {}", a.call_edges);
}

// --- call-graph fixture pins (exact node/edge counts) ---------------

#[test]
fn callgraph_traits_dispatch_targets_implementors_with_bodies() {
    let a = analyze(
        "[scan]\ncallgraph_traits\n[entry-points]\nexecute\n",
        &["panics"],
    );
    // trait decl (bodyless) + default method + 2 impls + 2 helpers
    // + execute.
    assert_eq!(a.fns, 7);
    // execute -> {Seeding::run, Filtering::run, Stage::tag} plus the
    // two helper calls; the bodyless signature is not a target.
    assert_eq!(a.call_edges, 5);
    assert_eq!(a.unknown_edges, 0);
    assert_eq!(a.entry_fns, 1);
    assert_eq!(a.reachable_fns, 6, "everything but the bodyless trait sig");
}

#[test]
fn callgraph_alias_resolves_use_as_to_definition() {
    let a = analyze(
        "[scan]\ncallgraph_alias\n[entry-points]\nexecute\n",
        &["panics"],
    );
    assert_eq!(a.fns, 2);
    assert_eq!(a.call_edges, 1, "launch() -> spawn_worker, not unknown");
    assert_eq!(a.unknown_edges, 0);
    assert_eq!(a.reachable_fns, 2);
}

#[test]
fn callgraph_shadow_prefers_same_file_then_fans_out() {
    let a = analyze(
        "[scan]\ncallgraph_shadow\n[entry-points]\nexecute\n",
        &["panics"],
    );
    assert_eq!(a.fns, 6);
    // execute -> a::normalize (same-file wins) + a::normalize -> step
    // + b::normalize -> other + dispatch -> both normalize defs.
    assert_eq!(a.call_edges, 5);
    assert_eq!(a.unknown_edges, 0);
    assert_eq!(a.reachable_fns, 3, "execute, a::normalize, step");
}

#[test]
fn callgraph_closures_merge_into_enclosing_fn() {
    let a = analyze(
        "[scan]\ncallgraph_closures\n[entry-points]\nexecute\n",
        &["panics"],
    );
    assert_eq!(a.fns, 3, "the closure is not its own node");
    assert_eq!(a.call_edges, 2, "execute -> helper -> inner");
    assert_eq!(a.unknown_edges, 1, "worker() — the closure binding");
    assert_eq!(a.reachable_fns, 3);
}

#[test]
fn callgraph_macro_synthesizes_one_fn_per_invocation() {
    let a = analyze(
        "[scan]\ncallgraph_macro\n[entry-points]\nexecute\n",
        &["panics"],
    );
    assert_eq!(a.fns, 4, "kernel_i16, kernel_i32, helper, execute");
    // execute -> both kernels, each kernel -> helper (via the shared
    // macro body range).
    assert_eq!(a.call_edges, 4);
    assert_eq!(a.unknown_edges, 0);
    assert_eq!(a.reachable_fns, 4);
}

// --- reachability + taint fixtures ----------------------------------

#[test]
fn reachable_panic_carries_full_chain_and_orphan_is_baselined() {
    let a = analyze(
        "[scan]\nreach_panics\n[entry-points]\nexecute\n\
         [baseline panics]\nreach_panics 1\n",
        &["panics"],
    );
    let s = a.stats("panics");
    assert_eq!(s.found, 2, "{:#?}", a.sites);
    assert_eq!(s.violations, 1, "only the reachable site is hard");
    assert_eq!(s.baselined, 1, "the orphan rides the baseline");
    let v = violations(&a);
    assert_eq!(
        v[0].msg,
        ".unwrap() — reachable from pipeline entry points via \
         execute -> stage_a -> stage_b"
    );
    assert_eq!(v[0].chain, vec!["execute", "stage_a", "stage_b"]);
}

#[test]
fn taint_unclassified_reachable_module_fails_surface_check() {
    let a = analyze(
        "[scan]\ntaint_flow\n[entry-points]\ncanonical_text\n\
         [determinism-sinks]\ncanonical_text\n",
        &["taint"],
    );
    let v = violations(&a);
    assert_eq!(v.len(), 2, "{:#?}", a.sites);
    assert!(v[0].msg.contains("listed in neither [determinism] nor"));
}

#[test]
fn taint_sink_reports_source_with_chain() {
    let a = analyze(
        "[scan]\ntaint_flow\n[entry-points]\ncanonical_text\n\
         [determinism-sinks]\ncanonical_text\n\
         [determinism]\ntaint_flow/report.rs\n",
        &["taint"],
    );
    let v = violations(&a);
    assert_eq!(v.len(), 1, "{:#?}", a.sites);
    assert_eq!(
        v[0].msg,
        "canonical sink canonical_text transitively calls tick \
         (wall clock: Instant::now at taint_flow/report.rs:15)"
    );
    assert_eq!(v[0].chain, vec!["canonical_text", "compute", "tick"]);
}
