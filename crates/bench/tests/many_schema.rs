//! Schema validation for `bench_many`'s `BENCH_many.json`.
//!
//! Runs the bench binary on a tiny genome set (CI's many-genome smoke
//! job executes this test) and checks the emitted JSON is well-formed,
//! integer-only, and carries every field downstream tooling reads. The
//! ≥1.5× speedup gate lives in the binary itself — it aborts when the
//! shared-index run fails to beat the N(N-1) baseline — so this test
//! passing implies the gate held on this host too.

use wga_core::journal::json::{self, Json};

fn int_field(obj: &Json, key: &str) -> i128 {
    obj.get(key)
        .unwrap_or_else(|| panic!("missing field {key:?} in {obj:?}"))
        .as_int()
        .unwrap_or_else(|| panic!("field {key:?} is not an integer"))
}

#[test]
fn bench_many_json_matches_schema() {
    let out = std::env::temp_dir().join(format!("BENCH_many_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_bench_many"))
        .args([
            "--genomes",
            "6",
            "--length",
            "2000",
            "--reps",
            "1",
            "--out",
            out.to_str().unwrap(),
        ])
        .status()
        .expect("bench binary runs");
    assert!(status.success(), "bench_many exited with {status}");

    let text = std::fs::read_to_string(&out).expect("bench wrote its JSON");
    let _ = std::fs::remove_file(&out);
    let doc = json::parse(&text).expect("BENCH_many.json is valid JSON");

    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("bench_many"));
    assert_eq!(int_field(&doc, "genomes"), 6);
    assert_eq!(int_field(&doc, "length"), 2000);
    assert_eq!(int_field(&doc, "pairs_total"), 15);
    assert_eq!(int_field(&doc, "baseline_runs"), 30);

    let baseline_us = int_field(&doc, "baseline_us");
    let many_us = int_field(&doc, "many_us");
    let speedup = int_field(&doc, "speedup_x100");
    assert!(baseline_us > 0 && many_us > 0);
    assert_eq!(speedup, baseline_us * 100 / many_us, "speedup is derived, not free-typed");
    assert!(
        speedup >= 150,
        "binary asserts the 1.5x gate; a lower value here means the JSON lies"
    );

    assert!(int_field(&doc, "baseline_matches") > 0, "baseline found homology");
    assert!(int_field(&doc, "many_alignments") > 0, "many mode found alignments");
    let built = int_field(&doc, "many_tables_built");
    assert!(
        built > 0 && built <= 6,
        "shared index builds at most one table per (single-chromosome) genome, got {built}"
    );
    let scheduled = int_field(&doc, "knn2_scheduled");
    let skipped = int_field(&doc, "knn2_skipped");
    assert_eq!(scheduled + skipped, 15);
    assert!(skipped > 0, "knn=2 over three unrelated clusters must skip distant pairs");
}
