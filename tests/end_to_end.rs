//! End-to-end integration: evolve → seed → filter → extend → chain →
//! metrics → MAF, across every crate in the workspace.

use darwin_wga::chain::chainer::chain_alignments;
use darwin_wga::chain::metrics;
use darwin_wga::core::{config::WgaParams, maf, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::SeedableRng;

fn pair(distance: f64, len: usize, seed: u64) -> SyntheticPair {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SyntheticPair::generate(len, &EvolutionParams::at_distance(distance), &mut rng)
}

#[test]
fn full_pipeline_recovers_most_orthologs_on_moderate_pair() {
    let pair = pair(0.2, 40_000, 1);
    let report =
        WgaPipeline::new(WgaParams::darwin_wga()).run(&pair.target.sequence, &pair.query.sequence);

    // Ground truth recall: matched bases vs true orthologous identical bases.
    let truth: Vec<(usize, usize)> = pair.orthologous_pairs();
    let true_identical = truth
        .iter()
        .filter(|&&(t, q)| pair.target.sequence[t] == pair.query.sequence[q])
        .count() as f64;
    // Note the numerator is not strictly bounded by the denominator:
    // around indels the aligner legitimately places gaps differently from
    // the generating process (alignment is not unique), pairing bases the
    // truth map pairs elsewhere, and extensions may cross short turnover
    // junk picking up coincidental matches. A ratio far above ~1.3 would
    // indicate duplicate alignments instead.
    let recall = report.total_matches() as f64 / true_identical;
    assert!(recall > 0.55, "recall {recall}");
    assert!(recall < 1.35, "recall {recall} suspiciously high (duplicates?)");

    // Every alignment must be internally consistent with the sequences.
    for wa in &report.alignments {
        wa.alignment
            .validate(&pair.target.sequence, &pair.query.sequence)
            .unwrap();
    }

    // Chains must not lose the bulk of the alignments.
    let alignments = report.forward_alignments();
    let chains = chain_alignments(&alignments, 3000);
    assert!(!chains.is_empty());
    let chained: u64 = metrics::matched_bases(&chains, &alignments);
    assert!(chained as f64 > 0.9 * report.total_matches() as f64);
}

#[test]
fn precision_against_ground_truth_is_high() {
    use darwin_wga::align::AlignOp;
    let pair = pair(0.3, 30_000, 2);
    let report =
        WgaPipeline::new(WgaParams::darwin_wga()).run(&pair.target.sequence, &pair.query.sequence);
    let truth: std::collections::HashSet<(usize, usize)> =
        pair.orthologous_pairs().into_iter().collect();

    let (mut aligned, mut correct) = (0u64, 0u64);
    for wa in &report.alignments {
        let a = &wa.alignment;
        let (mut t, mut q) = (a.target_start, a.query_start);
        for op in a.cigar.iter_ops() {
            match op {
                AlignOp::Match | AlignOp::Subst => {
                    aligned += 1;
                    if truth.contains(&(t, q)) {
                        correct += 1;
                    }
                    t += 1;
                    q += 1;
                }
                AlignOp::Insert => q += 1,
                AlignOp::Delete => t += 1,
            }
        }
    }
    let precision = correct as f64 / aligned.max(1) as f64;
    assert!(precision > 0.75, "precision {precision}");
}

#[test]
fn maf_output_is_well_formed_and_complete() {
    let pair = pair(0.15, 20_000, 3);
    let report =
        WgaPipeline::new(WgaParams::darwin_wga()).run(&pair.target.sequence, &pair.query.sequence);
    assert!(!report.alignments.is_empty());

    let mut out = Vec::new();
    maf::write_maf(
        &mut out,
        "target",
        &pair.target.sequence,
        "query",
        &pair.query.sequence,
        &report.alignments,
    )
    .unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with("##maf"));

    // One 'a' line and two 's' lines per alignment; aligned texts have
    // equal lengths within a block.
    let a_lines = text.lines().filter(|l| l.starts_with("a score=")).count();
    assert_eq!(a_lines, report.alignments.len());
    let mut s_lines = text.lines().filter(|l| l.starts_with("s "));
    while let (Some(t_line), Some(q_line)) = (s_lines.next(), s_lines.next()) {
        let t_text = t_line.split_whitespace().last().unwrap();
        let q_text = q_line.split_whitespace().last().unwrap();
        assert_eq!(t_text.len(), q_text.len());
        assert!(!t_text.contains(' '));
    }
}

#[test]
fn report_workload_feeds_hardware_model() {
    use darwin_wga::hwsim::perf::{accelerated_runtime, software_runtime, SoftwareThroughput};
    use darwin_wga::hwsim::platform::AcceleratorConfig;

    let pair = pair(0.3, 30_000, 4);
    let report =
        WgaPipeline::new(WgaParams::darwin_wga()).run(&pair.target.sequence, &pair.query.sequence);
    let w = report.workload;
    assert!(w.seeds > 0);
    assert!(w.filter_tiles > 0);
    assert!(w.extension_tiles > 0);
    // Filtering dominates the workload (§III-A).
    assert!(w.filter_tiles > 10 * w.extension_tiles);

    let sw = SoftwareThroughput {
        seeds_per_second: 10.0e6,
        filter_tiles_per_second: 10.0e3,
        ungapped_filters_per_second: 2.0e6,
        extension_tiles_per_second: 200.0,
    };
    let sw_rt = software_runtime(&w, &sw);
    for acc in [AcceleratorConfig::fpga(), AcceleratorConfig::asic()] {
        let hw_rt = accelerated_runtime(&w, &sw, &acc);
        assert!(hw_rt.total_s() > 0.0);
        assert!(
            hw_rt.filtering_s < sw_rt.filtering_s / 50.0,
            "hardware filtering {} vs software {}",
            hw_rt.filtering_s,
            sw_rt.filtering_s
        );
    }
}
