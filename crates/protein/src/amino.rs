//! Amino acids and the standard genetic code.

use genome::{Base, Sequence};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The twenty proteinogenic amino acids, the stop signal, and the
/// unknown residue `X` (produced when a codon contains an `N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum AminoAcid {
    A = 0,
    R = 1,
    N = 2,
    D = 3,
    C = 4,
    Q = 5,
    E = 6,
    G = 7,
    H = 8,
    I = 9,
    L = 10,
    K = 11,
    M = 12,
    F = 13,
    P = 14,
    S = 15,
    T = 16,
    W = 17,
    Y = 18,
    V = 19,
    /// Translation stop.
    Stop = 20,
    /// Unknown residue (ambiguous codon).
    X = 21,
}

impl AminoAcid {
    /// Number of distinct symbols (array-sizing constant).
    pub const COUNT: usize = 22;

    /// The residue's index (stable, used by scoring matrices).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// One-letter IUPAC code (`*` for stop).
    pub fn to_char(self) -> char {
        match self {
            AminoAcid::A => 'A',
            AminoAcid::R => 'R',
            AminoAcid::N => 'N',
            AminoAcid::D => 'D',
            AminoAcid::C => 'C',
            AminoAcid::Q => 'Q',
            AminoAcid::E => 'E',
            AminoAcid::G => 'G',
            AminoAcid::H => 'H',
            AminoAcid::I => 'I',
            AminoAcid::L => 'L',
            AminoAcid::K => 'K',
            AminoAcid::M => 'M',
            AminoAcid::F => 'F',
            AminoAcid::P => 'P',
            AminoAcid::S => 'S',
            AminoAcid::T => 'T',
            AminoAcid::W => 'W',
            AminoAcid::Y => 'Y',
            AminoAcid::V => 'V',
            AminoAcid::Stop => '*',
            AminoAcid::X => 'X',
        }
    }
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Translates one codon under the standard genetic code.
///
/// Codons containing `N` translate to [`AminoAcid::X`].
pub fn translate_codon(c1: Base, c2: Base, c3: Base) -> AminoAcid {
    use AminoAcid::*;
    if c1 == Base::N || c2 == Base::N || c3 == Base::N {
        return X;
    }
    // Index by 2-bit codes in (c1, c2, c3) order: table ordered T, C, A, G
    // is traditional; we order A=0, C=1, G=2, T=3 per our base codes.
    const TABLE: [AminoAcid; 64] = {
        // Rows: c1 in A,C,G,T; within: c2 in A,C,G,T; within: c3 in A,C,G,T.
        [
            // c1 = A
            K, N, K, N, // AA?
            T, T, T, T, // AC?
            R, S, R, S, // AG?
            I, I, M, I, // AT?
            // c1 = C
            Q, H, Q, H, // CA?
            P, P, P, P, // CC?
            R, R, R, R, // CG?
            L, L, L, L, // CT?
            // c1 = G
            E, D, E, D, // GA?
            A, A, A, A, // GC?
            G, G, G, G, // GG?
            V, V, V, V, // GT?
            // c1 = T
            Stop, Y, Stop, Y, // TA?
            S, S, S, S, // TC?
            Stop, C, W, C, // TG?
            L, F, L, F, // TT?
        ]
    };
    let idx = (c1.code2() as usize) * 16 + (c2.code2() as usize) * 4 + (c3.code2() as usize);
    TABLE[idx]
}

/// A reading frame of a DNA sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// Frame offset within the strand (0, 1 or 2).
    pub offset: u8,
    /// Whether the frame reads the reverse complement.
    pub reverse: bool,
}

impl Frame {
    /// All six reading frames.
    pub fn all() -> [Frame; 6] {
        [
            Frame { offset: 0, reverse: false },
            Frame { offset: 1, reverse: false },
            Frame { offset: 2, reverse: false },
            Frame { offset: 0, reverse: true },
            Frame { offset: 1, reverse: true },
            Frame { offset: 2, reverse: true },
        ]
    }

    /// The three forward frames.
    pub fn forward() -> [Frame; 3] {
        [
            Frame { offset: 0, reverse: false },
            Frame { offset: 1, reverse: false },
            Frame { offset: 2, reverse: false },
        ]
    }
}

/// A translated frame: the peptide plus the mapping back to DNA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslatedFrame {
    /// The frame translated.
    pub frame: Frame,
    /// The peptide (may contain stops — TBLASTX does not split at stops,
    /// it just scores through them heavily negatively).
    pub peptide: Vec<AminoAcid>,
    /// DNA length of the source (for coordinate mapping).
    pub dna_len: usize,
}

impl TranslatedFrame {
    /// DNA start coordinate (forward-strand) of peptide position `i`.
    pub fn dna_position(&self, peptide_pos: usize) -> usize {
        let codon_start = self.frame.offset as usize + 3 * peptide_pos;
        if self.frame.reverse {
            // Codon occupies [len - codon_start - 3, len - codon_start).
            self.dna_len - codon_start - 3
        } else {
            codon_start
        }
    }
}

/// Translates `seq` in the given frame.
pub fn translate(seq: &Sequence, frame: Frame) -> TranslatedFrame {
    let dna: Sequence;
    let source = if frame.reverse {
        dna = seq.reverse_complement();
        dna.as_slice()
    } else {
        seq.as_slice()
    };
    let mut peptide = Vec::with_capacity(source.len() / 3);
    let mut i = frame.offset as usize;
    while i + 3 <= source.len() {
        peptide.push(translate_codon(source[i], source[i + 1], source[i + 2]));
        i += 3;
    }
    TranslatedFrame {
        frame,
        peptide,
        dna_len: seq.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Sequence {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_codons() {
        use AminoAcid::*;
        assert_eq!(translate_codon(Base::A, Base::T, Base::G), M); // start
        assert_eq!(translate_codon(Base::T, Base::A, Base::A), Stop);
        assert_eq!(translate_codon(Base::T, Base::A, Base::G), Stop);
        assert_eq!(translate_codon(Base::T, Base::G, Base::A), Stop);
        assert_eq!(translate_codon(Base::T, Base::G, Base::G), W);
        assert_eq!(translate_codon(Base::G, Base::C, Base::A), A);
        assert_eq!(translate_codon(Base::A, Base::A, Base::A), K);
        assert_eq!(translate_codon(Base::T, Base::T, Base::T), F);
        assert_eq!(translate_codon(Base::C, Base::G, Base::C), R);
    }

    #[test]
    fn n_translates_to_x() {
        assert_eq!(translate_codon(Base::A, Base::N, Base::G), AminoAcid::X);
    }

    #[test]
    fn translate_frames() {
        // ATG GCA TAA → M A *
        let s = seq("ATGGCATAA");
        let f0 = translate(&s, Frame { offset: 0, reverse: false });
        let text: String = f0.peptide.iter().map(|a| a.to_char()).collect();
        assert_eq!(text, "MA*");
        // Frame 1 drops the first base: TGG CAT AA → W H
        let f1 = translate(&s, Frame { offset: 1, reverse: false });
        let text: String = f1.peptide.iter().map(|a| a.to_char()).collect();
        assert_eq!(text, "WH");
    }

    #[test]
    fn reverse_frame_translates_reverse_complement() {
        // revcomp(ATGGCATAA) = TTATGCCAT → TTA TGC CAT = L C H
        let s = seq("ATGGCATAA");
        let fr = translate(&s, Frame { offset: 0, reverse: true });
        let text: String = fr.peptide.iter().map(|a| a.to_char()).collect();
        assert_eq!(text, "LCH");
    }

    #[test]
    fn dna_position_mapping_forward() {
        let s = seq("ATGGCATAA");
        let f1 = translate(&s, Frame { offset: 1, reverse: false });
        assert_eq!(f1.dna_position(0), 1);
        assert_eq!(f1.dna_position(1), 4);
    }

    #[test]
    fn dna_position_mapping_reverse() {
        let s = seq("ATGGCATAA"); // len 9
        let fr = translate(&s, Frame { offset: 0, reverse: true });
        // Peptide pos 0 reads revcomp[0..3] = forward [6..9).
        assert_eq!(fr.dna_position(0), 6);
        assert_eq!(fr.dna_position(2), 0);
    }

    #[test]
    fn every_codon_translates() {
        let mut counts = [0usize; AminoAcid::COUNT];
        for c1 in Base::DNA {
            for c2 in Base::DNA {
                for c3 in Base::DNA {
                    counts[translate_codon(c1, c2, c3).index()] += 1;
                }
            }
        }
        // 64 codons total; 3 stops; every standard amino acid represented.
        assert_eq!(counts.iter().sum::<usize>(), 64);
        assert_eq!(counts[AminoAcid::Stop.index()], 3);
        assert_eq!(counts[AminoAcid::X.index()], 0);
        for (aa, &n) in counts.iter().enumerate().take(20) {
            assert!(n > 0, "amino {aa} missing");
        }
        // Degeneracy sanity: Leucine and Arginine have six codons each.
        assert_eq!(counts[AminoAcid::L.index()], 6);
        assert_eq!(counts[AminoAcid::R.index()], 6);
        assert_eq!(counts[AminoAcid::M.index()], 1);
        assert_eq!(counts[AminoAcid::W.index()], 1);
    }
}
