//! Integration tests of the hardware model against the paper's published
//! numbers and internal consistency rules.

use darwin_wga::hwsim::area::AsicProvisioning;
use darwin_wga::hwsim::bsw_array::BswBank;
use darwin_wga::hwsim::gactx_array::GactXBank;
use darwin_wga::hwsim::perf::{
    accelerated_runtime, perf_per_dollar_improvement, perf_per_watt_improvement,
    software_runtime, SoftwareThroughput, Workload,
};
use darwin_wga::hwsim::platform::{AcceleratorConfig, CpuConfig};

/// A Table V-like workload: filter tiles dominate, scaled down from the
/// paper's billions to something proportional.
fn paper_like_workload() -> Workload {
    Workload {
        seeds: 1_400_000_000,
        filter_tiles: 14_585_000_000, // ce11-cb4 row of Table V
        extension_tiles: 4_400_000,
        extension_cells: 4_400_000 * 1920 * 600,
        extension_rows: 4_400_000 * 1920,
    }
}

/// The paper's software rates: Parasail at 225K tiles/s (36 threads).
fn paper_software() -> SoftwareThroughput {
    SoftwareThroughput {
        seeds_per_second: 50.0e6,
        filter_tiles_per_second: 225.0e3,
        ungapped_filters_per_second: 45.0e6,
        extension_tiles_per_second: 1.2e3,
    }
}

#[test]
fn fpga_perf_per_dollar_matches_paper_band() {
    let w = paper_like_workload();
    let sw = paper_software();
    let cpu = CpuConfig::c4_8xlarge();
    let fpga = AcceleratorConfig::fpga();
    let sw_s = software_runtime(&w, &sw).total_s();
    let hw_s = accelerated_runtime(&w, &sw, &fpga).total_s();
    let perf = perf_per_dollar_improvement(sw_s, &cpu, hw_s, &fpga);
    // Paper: 19.1–24.3×. Allow a generous modelling band.
    assert!((8.0..80.0).contains(&perf), "perf/$ {perf}");
}

#[test]
fn asic_perf_per_watt_matches_paper_band() {
    let w = paper_like_workload();
    let sw = paper_software();
    let cpu = CpuConfig::c4_8xlarge();
    let asic = AcceleratorConfig::asic();
    let sw_s = software_runtime(&w, &sw).total_s();
    let hw_s = accelerated_runtime(&w, &sw, &asic).total_s();
    let perf = perf_per_watt_improvement(sw_s, &cpu, hw_s, &asic);
    // Paper: ~1,478–1,553×. Our seeding stays in software with an assumed
    // rate, so accept an order-of-magnitude band centred on the paper.
    assert!((300.0..6000.0).contains(&perf), "perf/W {perf}");
}

#[test]
fn iso_sensitive_software_is_much_slower_than_ungapped() {
    // The paper's ~200× software slowdown from gapped filtering.
    let w = paper_like_workload();
    let sw = paper_software();
    let gapped_filter_s = w.filter_tiles as f64 / sw.filter_tiles_per_second;
    let ungapped_filter_s = w.filter_tiles as f64 / sw.ungapped_filters_per_second;
    let ratio = gapped_filter_s / ungapped_filter_s;
    assert!((100.0..400.0).contains(&ratio), "slowdown {ratio}");
}

#[test]
fn asic_filter_throughput_an_order_above_fpga() {
    let fpga = BswBank::fpga().tiles_per_second();
    let asic = BswBank::asic().tiles_per_second();
    // Paper: 6.25M vs 70M — about 11×.
    let ratio = asic / fpga;
    assert!((6.0..16.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn gactx_asic_throughput_band() {
    let bank = GactXBank::asic();
    let tps = bank.tiles_per_second(1920.0 * 600.0, 1920.0);
    // Paper: ~300K tiles/s for 12 arrays.
    assert!((1.5e5..7.0e5).contains(&tps), "{tps}");
}

#[test]
fn table4_totals_hold() {
    let p = AsicProvisioning::darwin_wga();
    assert!((p.total_area_mm2() - 35.92).abs() < 0.05);
    assert!((p.total_power_w() - 43.34).abs() < 0.05);
}

#[test]
fn asic_is_faster_than_lastz_at_lower_power() {
    // §VI-C: "at 5× lower power, Darwin-WGA ASIC is 1.3–2× faster than
    // LASTZ". LASTZ's runtime ≈ ungapped filtering at 45M filters/s.
    let w = paper_like_workload();
    let sw = paper_software();
    let asic = AcceleratorConfig::asic();
    let lastz_s = w.seeds as f64 / sw.seeds_per_second
        + w.filter_tiles as f64 / sw.ungapped_filters_per_second
        + w.extension_tiles as f64 / sw.extension_tiles_per_second;
    let asic_s = accelerated_runtime(&w, &sw, &asic).total_s();
    assert!(asic_s < lastz_s, "asic {asic_s} vs lastz {lastz_s}");
    let cpu = CpuConfig::c4_8xlarge();
    assert!(cpu.power_w / asic.power_w > 4.0);
}
