//! Observability overhead micro-bench: what do the hot-loop hooks cost?
//!
//! Two measurements back the obs module's overhead contract (DESIGN.md
//! "Observability"):
//!
//! * **hook micro-loop** — `Obs::timer` + `Obs::filter_tile` (the
//!   per-filter-tile instrumentation pair, the hottest site in the
//!   pipeline) iterated N times with the recorder disabled and enabled.
//!   Disabled, each iteration is a branch on a folded-to-`None`
//!   reference; enabled, it is two `Instant::now` calls plus three
//!   relaxed atomic adds.
//! * **pipeline run** — the full serial pipeline on a synthetic pair
//!   with `Obs::off()` vs a live `TraceRecorder`, cross-checking that
//!   both runs produce identical alignments (the inertness contract,
//!   enforced here as an assertion while timing).
//!
//! Results go to stdout and to an integer-only `BENCH_obs.json`
//! (`overhead_centi` = 100 × enabled/disabled wall time). No
//! performance gating belongs downstream — hosts vary; the schema test
//! only checks shape and the inertness assertion.
//!
//! Run with: `cargo run --release -p wga-bench --bin obs_overhead`
//! Optional flags: `--iters N` (default 2000000), `--len N` (default
//! 20000), `--out PATH` (BENCH_obs.json).

use genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;
use wga_core::config::WgaParams;
use wga_core::obs::{Obs, TraceRecorder};
use wga_core::pipeline::WgaPipeline;

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn parse_opt<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str, default: T) -> T {
    match take_opt(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Times `iters` iterations of the per-tile hook pair; returns wall µs.
fn hook_loop(obs: Obs<'_>, iters: u64) -> u64 {
    let start = Instant::now();
    for i in 0..iters {
        let timer = obs.timer();
        obs.filter_tile(&timer, black_box(i & 0xffff));
    }
    start.elapsed().as_micros() as u64
}

/// Centi-nanoseconds per iteration (integer, stable across hosts in
/// shape if not in value).
fn centi_ns_per_iter(wall_us: u64, iters: u64) -> u64 {
    if iters == 0 {
        return 0;
    }
    (wall_us as u128 * 100_000 / iters as u128) as u64
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let iters: u64 = parse_opt(&mut args, "--iters", 2_000_000);
    let len: usize = parse_opt(&mut args, "--len", 20_000);
    let out_path = take_opt(&mut args, "--out").unwrap_or_else(|| "BENCH_obs.json".into());
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments: {args:?}");
        std::process::exit(2);
    }

    // Hook micro-loop, disabled vs enabled.
    let disabled_us = hook_loop(Obs::off(), iters);
    let recorder = TraceRecorder::new();
    let enabled_us = hook_loop(Obs::new(&recorder), iters);
    let disabled_centi_ns = centi_ns_per_iter(disabled_us, iters);
    let enabled_centi_ns = centi_ns_per_iter(enabled_us, iters);
    println!("obs_overhead: {iters} hook iterations");
    println!(
        "  disabled: {disabled_us} us total, {:.2} ns/op",
        disabled_centi_ns as f64 / 100.0
    );
    println!(
        "  enabled:  {enabled_us} us total, {:.2} ns/op",
        enabled_centi_ns as f64 / 100.0
    );

    // Full pipeline, off vs on, with an inertness cross-check.
    let mut rng = StdRng::seed_from_u64(11);
    let pair = SyntheticPair::generate(len, &EvolutionParams::at_distance(0.2), &mut rng);
    let pipeline = WgaPipeline::new(WgaParams::darwin_wga());

    let start = Instant::now();
    let off = pipeline.run_observed(&pair.target.sequence, &pair.query.sequence, Obs::off());
    let off_us = start.elapsed().as_micros() as u64;

    let run_recorder = TraceRecorder::new();
    let start = Instant::now();
    let on = pipeline.run_observed(
        &pair.target.sequence,
        &pair.query.sequence,
        Obs::new(&run_recorder),
    );
    let on_us = start.elapsed().as_micros() as u64;

    // Inertness: identical alignments either way.
    assert_eq!(off.alignments, on.alignments, "recorder changed results");
    assert_eq!(off.workload, on.workload, "recorder changed the workload");
    let spans = run_recorder.spans().len() as u64;
    let overhead_centi = if off_us == 0 {
        0
    } else {
        (on_us as u128 * 100 / off_us as u128) as u64
    };
    println!(
        "  pipeline ({len} bp): off {off_us} us, on {on_us} us ({}.{:02}x), {spans} spans",
        overhead_centi / 100,
        overhead_centi % 100
    );

    let json = format!(
        "{{\"bench\": \"obs_overhead\", \"iters\": {iters}, \"len\": {len}, \
         \"hook\": {{\"disabled_us\": {disabled_us}, \"enabled_us\": {enabled_us}, \
         \"disabled_centi_ns\": {disabled_centi_ns}, \"enabled_centi_ns\": {enabled_centi_ns}}}, \
         \"pipeline\": {{\"off_us\": {off_us}, \"on_us\": {on_us}, \
         \"overhead_centi\": {overhead_centi}, \"spans\": {spans}}}}}\n"
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
