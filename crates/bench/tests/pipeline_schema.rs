//! Schema validation for `pipeline_throughput`'s `BENCH_pipeline.json`.
//!
//! Runs the bench binary on a tiny input (CI's bench smoke-step executes
//! this test) and checks the emitted JSON is well-formed and carries
//! every field downstream tooling reads. Deliberately **no performance
//! gating** — executor speedups vary with the host and input size — the
//! binary itself asserts both executors reproduce the single-thread
//! barrier reference byte-for-byte.

use wga_core::journal::json::{self, Json};

fn int_field(obj: &Json, key: &str) -> i128 {
    obj.get(key)
        .unwrap_or_else(|| panic!("missing field {key:?} in {obj:?}"))
        .as_int()
        .unwrap_or_else(|| panic!("field {key:?} is not an integer"))
}

fn check_executor(entry: &Json, executor: &str) -> (i128, i128) {
    let e = entry.get(executor).expect("executor object");
    let wall_us = int_field(e, "wall_us");
    let alignments = int_field(e, "alignments");
    let matches = int_field(e, "matches");
    let filter_tiles = int_field(e, "filter_tiles");
    assert!(wall_us >= 0);
    assert!(alignments >= 0);
    assert!(matches >= 0, "{executor}: negative match count");
    assert!(filter_tiles > 0, "{executor}: pipeline filtered no tiles");
    (matches, filter_tiles)
}

#[test]
fn bench_pipeline_json_matches_schema() {
    let out = std::env::temp_dir().join(format!("BENCH_pipeline_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_pipeline_throughput"))
        .args([
            "--pairs",
            "2",
            "--length",
            "5000",
            "--threads",
            "1,2",
            "--reps",
            "1",
            "--out",
            out.to_str().unwrap(),
        ])
        .status()
        .expect("bench binary runs");
    assert!(status.success(), "pipeline_throughput exited with {status}");

    let text = std::fs::read_to_string(&out).expect("bench wrote its JSON");
    let _ = std::fs::remove_file(&out);
    let doc = json::parse(&text).expect("BENCH_pipeline.json is valid JSON");

    assert_eq!(
        doc.get("bench").and_then(Json::as_str),
        Some("pipeline_throughput")
    );
    assert_eq!(int_field(&doc, "pairs"), 2);
    assert_eq!(int_field(&doc, "length"), 5000);
    assert_eq!(int_field(&doc, "queue_depth"), 64);
    assert_eq!(int_field(&doc, "reps"), 1);

    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 2, "one entry per requested thread count");
    let mut seen = Vec::new();
    for entry in results {
        seen.push(int_field(entry, "threads"));
        let (b_matches, b_tiles) = check_executor(entry, "barrier");
        let (d_matches, d_tiles) = check_executor(entry, "dataflow");
        // Both executors run the identical workload — the binary already
        // byte-compares canonical_text; the JSON must agree too.
        assert_eq!(b_matches, d_matches, "executors disagree on matches");
        assert_eq!(b_tiles, d_tiles, "executors disagree on filter tiles");
        assert!(int_field(entry, "speedup_centi") >= 0);
    }
    assert_eq!(seen, vec![1, 2]);
}
