//! Banded Smith-Waterman (BSW) — the gapped filtering kernel (§III-C).
//!
//! A tile of size `Tf` (default 320) is created with the seed hit at its
//! center; only cells within `B` (default 32) of the tile diagonal are
//! computed, using Smith-Waterman scoring with affine gaps. The tile's
//! maximum score `Vmax` and its position `xmax` are returned: hits with
//! `Vmax >= Hf` pass the filter and `xmax` becomes the anchor of the
//! extension stage.
//!
//! Replacing LASTZ's *ungapped* filter with this kernel is the paper's key
//! sensitivity improvement: indels inside the band no longer kill a true
//! positive.

// lint: hot — allocation-free inner loops are this kernel's whole point

use genome::{Base, GapPenalties, SubstitutionMatrix};

const NEG_INF: i32 = i32::MIN / 4;

/// Outcome of one banded Smith-Waterman filter tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandedOutcome {
    /// Maximum cell score in the tile (`Vmax`), clamped at 0.
    pub max_score: i64,
    /// Target (column) coordinate of the maximum, 0-based into the tile.
    pub target_pos: usize,
    /// Query (row) coordinate of the maximum, 0-based into the tile.
    pub query_pos: usize,
    /// Number of DP cells computed.
    pub cells: u64,
}

/// Runs banded Smith-Waterman over a tile.
///
/// `target` spans the tile's columns and `query` its rows; the band covers
/// cells with `|j - i| <= band` (both 0-based), i.e. a corridor of width
/// `2*band + 1` around the main diagonal — the geometry of equations 4–5
/// in the paper with the stripe structure flattened.
///
/// # Examples
///
/// ```
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "ACGTACGTACGT".parse()?;
/// let q: Sequence = "ACGTACGTACGT".parse()?;
/// let out = align::banded::banded_smith_waterman(
///     t.as_slice(),
///     q.as_slice(),
///     &SubstitutionMatrix::darwin_wga(),
///     &GapPenalties::darwin_wga(),
///     4,
/// );
/// assert_eq!(out.max_score, 3 * (91 + 100 + 100 + 91)); // perfect 12-bp match
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn banded_smith_waterman(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    band: usize,
) -> BandedOutcome {
    let (n, m) = (target.len(), query.len());
    if n == 0 || m == 0 {
        return BandedOutcome::default();
    }
    // Rolling rows over V and E (gap-in-target), F needs only the cell above.
    let mut v_prev = vec![0i32; n + 1];
    let mut e_prev = vec![NEG_INF; n + 1];
    let mut f_prev = vec![NEG_INF; n + 1];
    let mut v_cur = vec![0i32; n + 1];
    let mut e_cur = vec![NEG_INF; n + 1];
    let mut f_cur = vec![NEG_INF; n + 1];

    let mut best = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);
    let mut cells = 0u64;

    for i in 1..=m {
        // Band for row i (1-based): columns j with |(j-1) - (i-1)| <= band.
        let jstart = i.saturating_sub(band).max(1);
        let jstop = (i + band).min(n);
        if jstart > jstop {
            break;
        }
        // Left edge: v_cur[jstart-1] holds row i-2 leftovers after the
        // buffer swaps; cells outside the band read as empty (SW restart).
        v_cur[jstart - 1] = 0;
        e_cur[jstart - 1] = NEG_INF;
        f_cur[jstart - 1] = NEG_INF;
        // Right edge: the band widens right by one column per row, so
        // v_prev[jstop] was never computed by row i-1 when the band grew.
        let prev_jstop = ((i - 1) + band).min(n);
        if i > 1 && jstop > prev_jstop {
            v_prev[jstop] = 0;
            e_prev[jstop] = NEG_INF;
            f_prev[jstop] = NEG_INF;
        }
        for j in jstart..=jstop {
            let e_val = (v_cur[j - 1] - gaps.open - gaps.extend).max(e_cur[j - 1] - gaps.extend);
            let f_val = (v_prev[j] - gaps.open - gaps.extend).max(f_prev[j] - gaps.extend);
            let sub = v_prev[j - 1] + w.score(target[j - 1], query[i - 1]);
            let val = 0.max(sub).max(e_val).max(f_val);
            v_cur[j] = val;
            e_cur[j] = e_val;
            f_cur[j] = f_val;
            cells += 1;
            if val > best {
                best = val;
                best_i = i;
                best_j = j;
            }
        }
        std::mem::swap(&mut v_prev, &mut v_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }

    BandedOutcome {
        max_score: best as i64,
        target_pos: best_j.saturating_sub(1),
        query_pos: best_i.saturating_sub(1),
        cells,
    }
}

/// A filter tile: target/query windows of `tile_size` centred on a seed
/// hit, mirroring Fig. 4b. Returns the windows' start offsets so callers
/// can convert tile-relative anchors back to genome coordinates.
///
/// The windows are clipped at sequence boundaries.
pub fn tile_around(
    seed_t: usize,
    seed_q: usize,
    tile_size: usize,
    target_len: usize,
    query_len: usize,
) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
    let half = tile_size / 2;
    let t0 = seed_t.saturating_sub(half);
    let q0 = seed_q.saturating_sub(half);
    let t1 = (t0 + tile_size).min(target_len);
    let q1 = (q0 + tile_size).min(query_len);
    (t0..t1, q0..q1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;
    use genome::Sequence;

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    #[test]
    fn matches_full_sw_on_diagonal_alignments() {
        let (w, g) = dw();
        let t: Sequence = "ACGGTCAGTCGATTGCAGTCAGCTAGCTAGG".parse().unwrap();
        let q: Sequence = "ACGGTCAGTCGATTGCAGTCAGCTAGCTAGG".parse().unwrap();
        let banded = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, 8);
        let full = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        assert_eq!(banded.max_score, full.best_score);
    }

    #[test]
    fn tolerates_small_indels_within_band() {
        let (w, g) = dw();
        // Query has a 3-base deletion relative to target.
        let t: Sequence = "ACGGTCAGTCGATTGCAGTCAGCTAGCTAGGATCGGATTACA".parse().unwrap();
        let q: Sequence = "ACGGTCAGTCGAGCAGTCAGCTAGCTAGGATCGGATTACA".parse().unwrap();
        let banded = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, 8);
        let full = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        assert_eq!(banded.max_score, full.best_score);
        assert!(banded.max_score > 2000);
    }

    #[test]
    fn misses_alignments_outside_band() {
        let (w, g) = dw();
        // 20-base offset: alignment lies on a far diagonal.
        let t: Sequence = format!("{}{}", "T".repeat(20), "ACGGTCAGTCGA").parse().unwrap();
        let q: Sequence = "ACGGTCAGTCGA".parse().unwrap();
        let wide = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, 32);
        let narrow = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, 4);
        assert!(wide.max_score > narrow.max_score);
    }

    #[test]
    fn cells_bounded_by_band() {
        let (w, g) = dw();
        let t: Sequence = "ACGT".repeat(100).parse().unwrap();
        let q: Sequence = "ACGT".repeat(100).parse().unwrap();
        let band = 16usize;
        let out = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        assert!(out.cells <= (400 * (2 * band as u64 + 1)));
        assert!(out.cells >= 400);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let (w, g) = dw();
        let t: Sequence = "ACGT".parse().unwrap();
        let out = banded_smith_waterman(t.as_slice(), &[], &w, &g, 4);
        assert_eq!(out.max_score, 0);
        assert_eq!(out.cells, 0);
    }

    #[test]
    fn reports_position_of_maximum() {
        let (w, g) = dw();
        let t: Sequence = "ACGTACGTTTTTTTTT".parse().unwrap();
        let q: Sequence = "ACGTACGTCCCCCCCC".parse().unwrap();
        let out = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, 4);
        // Max is at the end of the 8-base shared prefix.
        assert_eq!(out.target_pos, 7);
        assert_eq!(out.query_pos, 7);
    }

    #[test]
    fn tile_window_clipping() {
        let (tr, qr) = tile_around(10, 10, 320, 1000, 1000);
        assert_eq!(tr, 0..320);
        assert_eq!(qr, 0..320);
        let (tr, qr) = tile_around(900, 500, 320, 1000, 1000);
        assert_eq!(tr, 740..1000);
        assert_eq!(qr, 340..660);
    }
}
