//! Symbol extraction: the item-level view of one lexed file that the
//! call-graph layer builds on.
//!
//! From the flat token stream this recovers:
//!
//! * **functions** — free `fn`s, methods inside `impl` blocks (with the
//!   implementing type and, for `impl Trait for Type`, the trait name),
//!   and trait-declaration methods (with or without default bodies);
//! * **traits** — name plus declared method names, so a `.method(` call
//!   can be resolved to every in-workspace implementor;
//! * **`use` aliases** — `use path::to::X as Y;` so a call through `Y`
//!   resolves to `X`;
//! * **macro definitions and item-position invocations** — a
//!   `macro_rules!` body is kept as a token range; invoking a workspace
//!   macro whose body contains `fn $name(` (the `wavefront_i16_kernel!`
//!   idiom) synthesizes one function per invocation, named by the first
//!   identifier argument, whose body is the macro's body range.
//!
//! Extraction is lexical, like everything in this crate: no type
//! inference, no expansion. The approximations are documented per-site
//! and pinned by the fixture crates under `tests/fixtures/callgraph_*`.

use crate::lexer::{match_delim, Lexed, Tok, TokKind};

/// One function the call graph will treat as a node.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Simple name (`execute`, `canonical_text`).
    pub name: String,
    /// File index (into the analysis' sorted file list).
    pub file: usize,
    /// 1-based line of the `fn` keyword (or macro invocation).
    pub line: u32,
    /// Token range `[start, end]` of the body braces, if the fn has a
    /// body (trait declarations without defaults do not).
    pub body: Option<(usize, usize)>,
    /// Implementing type for methods (`impl Type` / `impl Trait for
    /// Type`), `None` for free fns and trait declarations.
    pub impl_type: Option<String>,
    /// Trait name when declared in `impl Trait for Type` or inside
    /// `trait Trait { .. }`.
    pub trait_name: Option<String>,
    /// Inside `#[cfg(test)]` code.
    pub is_test: bool,
    /// Synthesized from a macro invocation; the body range indexes the
    /// *defining* file's tokens (same file in practice — workspace
    /// macros are invoked where they are defined).
    pub from_macro: bool,
}

impl FnDef {
    /// `Type::name` for methods, plain `name` otherwise — the display
    /// form used in reachability chains.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}", t, self.name),
            None => match &self.trait_name {
                Some(t) => format!("{}::{}", t, self.name),
                None => self.name.clone(),
            },
        }
    }
}

/// One trait declaration: its name and declared method names.
#[derive(Debug, Clone)]
pub struct TraitDef {
    pub name: String,
    pub methods: Vec<String>,
}

/// `use path::X as Y;` — calls through `Y` mean `X`.
#[derive(Debug, Clone)]
pub struct UseAlias {
    pub alias: String,
    pub target: String,
}

/// A `macro_rules!` definition with its body token range.
#[derive(Debug, Clone)]
pub struct MacroDef {
    pub name: String,
    pub body: (usize, usize),
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    pub fns: Vec<FnDef>,
    pub traits: Vec<TraitDef>,
    pub aliases: Vec<UseAlias>,
    pub macros: Vec<MacroDef>,
}

/// Extracts items from one lexed file.
pub fn extract(lexed: &Lexed<'_>, file: usize) -> FileSymbols {
    let toks = &lexed.toks;
    let mut out = FileSymbols::default();

    // Pass 1: macro definitions (needed before invocations resolve).
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "macro_rules"
            && matches!(toks.get(i + 1), Some(t) if t.text == "!")
            && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Ident)
        {
            let name = toks[i + 2].text.to_string();
            if let Some(open) = body_open(toks, i + 3) {
                if let Some(close) = match_delim(toks, open, "{", "}") {
                    out.macros.push(MacroDef {
                        name,
                        body: (open, close),
                    });
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    // Pass 2: items. `impl_stack` holds (type, trait, brace-close) for
    // the innermost impl/trait block containing the cursor.
    #[derive(Clone)]
    struct Ctx {
        impl_type: Option<String>,
        trait_name: Option<String>,
        end: usize,
    }
    let mut ctxs: Vec<Ctx> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        ctxs.retain(|c| c.end >= i);
        let t = &toks[i];

        // use a::b::C as D;
        if t.text == "use" && !lexed.test[i] {
            let mut j = i + 1;
            let mut last_ident: Option<&str> = None;
            while j < toks.len() && toks[j].text != ";" && toks[j].text != "{" {
                if toks[j].kind == TokKind::Ident && toks[j].text != "as" {
                    last_ident = Some(toks[j].text);
                }
                if toks[j].text == "as"
                    && matches!(toks.get(j + 1), Some(a) if a.kind == TokKind::Ident)
                {
                    if let Some(target) = last_ident {
                        out.aliases.push(UseAlias {
                            alias: toks[j + 1].text.to_string(),
                            target: target.to_string(),
                        });
                    }
                    j += 1;
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }

        // impl [<..>] Path [for Path] { .. }  — only the *type* names
        // matter; generics and where-clauses are skipped lexically.
        if t.text == "impl" {
            let mut j = i + 1;
            // Skip generic params `<...>` (angle brackets are Puncts;
            // match them with a depth counter that tolerates `->`).
            if matches!(toks.get(j), Some(x) if x.text == "<") {
                let mut depth = 0i64;
                while j < toks.len() {
                    match toks[j].text {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        "{" | ";" => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            let first = path_head(toks, &mut j);
            let mut impl_type = first.clone();
            let mut trait_name = None;
            skip_generics(toks, &mut j);
            if matches!(toks.get(j), Some(x) if x.text == "for") {
                j += 1;
                let second = path_head(toks, &mut j);
                skip_generics(toks, &mut j);
                trait_name = first;
                impl_type = second;
            }
            if let Some(open) = body_open(toks, j) {
                if let Some(close) = match_delim(toks, open, "{", "}") {
                    ctxs.push(Ctx {
                        impl_type,
                        trait_name,
                        end: close,
                    });
                    i = open + 1;
                    continue;
                }
            }
        }

        // trait Name { fn a(..); fn b(..) { default } }
        if t.text == "trait"
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)
            && !lexed.test[i]
        {
            let name = toks[i + 1].text.to_string();
            let mut j = i + 2;
            if let Some(open) = body_open(toks, j) {
                if let Some(close) = match_delim(toks, open, "{", "}") {
                    let mut methods = Vec::new();
                    let mut k = open + 1;
                    while k < close {
                        if toks[k].text == "fn"
                            && matches!(toks.get(k + 1), Some(n) if n.kind == TokKind::Ident)
                        {
                            methods.push(toks[k + 1].text.to_string());
                        }
                        k += 1;
                    }
                    out.traits.push(TraitDef {
                        name: name.clone(),
                        methods,
                    });
                    ctxs.push(Ctx {
                        impl_type: None,
                        trait_name: Some(name),
                        end: close,
                    });
                    j = open + 1;
                    i = j;
                    continue;
                }
            }
        }

        // fn name(..) [-> T] { body }   (or `;` for trait decls).
        // `fn` followed by `(` is a fn-pointer type, not an item.
        if t.text == "fn"
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)
        {
            let name = toks[i + 1].text.to_string();
            let ctx = ctxs.last();
            let body = body_open(toks, i + 2)
                .and_then(|open| match_delim(toks, open, "{", "}").map(|close| (open, close)));
            out.fns.push(FnDef {
                name,
                file,
                line: t.line,
                body,
                impl_type: ctx.and_then(|c| c.impl_type.clone()),
                trait_name: ctx.and_then(|c| c.trait_name.clone()),
                is_test: lexed.test[i],
                from_macro: false,
            });
            if let Some((_, close)) = body {
                i = close + 1;
                continue;
            }
        }

        i += 1;
    }

    // Pass 3: item-position invocations of workspace macros whose body
    // declares `fn $meta(` — synthesize one fn per invocation, named by
    // the first identifier argument (the `wavefront_i16_kernel!` idiom:
    // `kernel!(name, "sse2", 8, ...)` expands to `fn name(..) {..}`).
    let macro_fns: Vec<(String, (usize, usize))> = out
        .macros
        .iter()
        .filter(|m| macro_declares_fn(toks, m.body))
        .map(|m| (m.name.clone(), m.body))
        .collect();
    if !macro_fns.is_empty() {
        // An invocation is "item position" when it is not inside any
        // extracted fn body (a call-position macro is just a call).
        let bodies: Vec<(usize, usize)> =
            out.fns.iter().filter_map(|f| f.body).collect();
        let mut i = 0usize;
        while i + 2 < toks.len() {
            let inside_fn = bodies.iter().any(|&(s, e)| s <= i && i <= e);
            if !inside_fn
                && toks[i].kind == TokKind::Ident
                && toks[i + 1].text == "!"
                && toks[i + 2].text == "("
            {
                if let Some((_, body)) = macro_fns.iter().find(|(n, _)| *n == toks[i].text) {
                    // First identifier argument names the generated fn.
                    if let Some(close) = match_delim(toks, i + 2, "(", ")") {
                        let arg = toks[i + 3..close]
                            .iter()
                            .find(|a| a.kind == TokKind::Ident);
                        if let Some(arg) = arg {
                            out.fns.push(FnDef {
                                name: arg.text.to_string(),
                                file,
                                line: toks[i].line,
                                body: Some(*body),
                                impl_type: None,
                                trait_name: None,
                                is_test: lexed.test[i],
                                from_macro: true,
                            });
                        }
                        i = close + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    out
}

/// Whether a macro body contains `fn <metavar-or-ident>(` — i.e. the
/// macro generates functions when invoked.
fn macro_declares_fn(toks: &[Tok<'_>], body: (usize, usize)) -> bool {
    let (start, end) = body;
    let mut k = start;
    while k + 1 <= end {
        if toks[k].text == "fn" {
            // `fn $name` lexes as `fn` `$` `name`; plain `fn name` too.
            match toks.get(k + 1) {
                Some(t) if t.kind == TokKind::Ident => return true,
                Some(t) if t.text == "$" => return true,
                _ => {}
            }
        }
        k += 1;
    }
    false
}

/// Reads the head identifier of a path at `*j` (`a::b::C` → `C`),
/// advancing past it. Returns `None` when no identifier is present
/// (e.g. `impl &dyn Trait`, references and `dyn` are skipped first).
fn path_head(toks: &[Tok<'_>], j: &mut usize) -> Option<String> {
    while matches!(toks.get(*j), Some(t) if t.text == "&" || t.text == "dyn" || t.kind == TokKind::Lifetime || t.text == "mut")
    {
        *j += 1;
    }
    let mut last: Option<String> = None;
    while let Some(t) = toks.get(*j) {
        if t.kind == TokKind::Ident {
            last = Some(t.text.to_string());
            *j += 1;
            // `::` continues the path.
            if matches!(toks.get(*j), Some(a) if a.text == ":")
                && matches!(toks.get(*j + 1), Some(b) if b.text == ":")
            {
                *j += 2;
                continue;
            }
        }
        break;
    }
    last
}

/// Skips a trailing generic-argument list `<...>` at `*j`, if present.
fn skip_generics(toks: &[Tok<'_>], j: &mut usize) {
    if !matches!(toks.get(*j), Some(t) if t.text == "<") {
        return;
    }
    let mut depth = 0i64;
    while let Some(t) = toks.get(*j) {
        match t.text {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    *j += 1;
                    return;
                }
            }
            "{" | ";" => return,
            _ => {}
        }
        *j += 1;
    }
}

/// First `{` at paren/bracket depth 0 from `i`; `None` when a `;`
/// intervenes (trait method declaration, fn-pointer type).
pub(crate) fn body_open(toks: &[Tok<'_>], i: usize) -> Option<usize> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return Some(j),
            ";" if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sym(src: &str) -> FileSymbols {
        extract(&lex(src), 0)
    }

    #[test]
    fn free_fns_and_methods() {
        let s = sym("
fn free() {}
struct T;
impl T {
    fn method(&self) {}
}
trait Tr { fn decl(&self); fn with_default(&self) {} }
impl Tr for T {
    fn decl(&self) {}
}
");
        let names: Vec<(String, Option<String>, Option<String>)> = s
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone(), f.trait_name.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, None),
                ("method".into(), Some("T".into()), None),
                ("decl".into(), None, Some("Tr".into())),
                ("with_default".into(), None, Some("Tr".into())),
                ("decl".into(), Some("T".into()), Some("Tr".into())),
            ]
        );
        assert_eq!(s.traits.len(), 1);
        assert_eq!(s.traits[0].methods, vec!["decl", "with_default"]);
    }

    #[test]
    fn generic_impl_and_references() {
        let s = sym("
impl<'a, T: Clone> Wrapper<'a, T> {
    fn get(&self) -> &T { &self.0 }
}
impl<T> From<T> for Holder<T> {
    fn from(t: T) -> Holder<T> { Holder(t) }
}
");
        assert_eq!(s.fns[0].impl_type.as_deref(), Some("Wrapper"));
        assert_eq!(s.fns[1].impl_type.as_deref(), Some("Holder"));
        assert_eq!(s.fns[1].trait_name.as_deref(), Some("From"));
    }

    #[test]
    fn use_alias_extracted() {
        let s = sym("use crate::deep::module::real_name as alias;\nuse std::fmt;\n");
        assert_eq!(s.aliases.len(), 1);
        assert_eq!(s.aliases[0].alias, "alias");
        assert_eq!(s.aliases[0].target, "real_name");
    }

    #[test]
    fn macro_generated_fn_synthesized() {
        let s = sym(r#"
macro_rules! make_kernel {
    ($fname:ident, $lanes:expr) => {
        fn $fname(x: u32) -> u32 { helper(x) + $lanes }
    };
}
make_kernel!(kernel_sse2, 8);
make_kernel!(kernel_avx2, 16);
fn helper(x: u32) -> u32 { x }
"#);
        let macro_fns: Vec<&str> = s
            .fns
            .iter()
            .filter(|f| f.from_macro)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(macro_fns, vec!["kernel_sse2", "kernel_avx2"]);
        // Generated bodies point into the macro definition, where
        // `helper(` is visible to call extraction.
        let k = s.fns.iter().find(|f| f.name == "kernel_sse2").unwrap();
        assert!(k.body.is_some());
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let s = sym("fn real(cb: fn(u32) -> u32) -> u32 { cb(1) }");
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "real");
    }

    #[test]
    fn test_fns_flagged() {
        let s = sym("
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
");
        assert!(!s.fns[0].is_test);
        assert!(s.fns[1].is_test);
    }
}
