//! Anchor absorption (§III-D).
//!
//! During extension, Darwin-WGA "implements a hash strategy to remove
//! anchors that would result in duplicate alignments, similar to the
//! anchor absorption strategy in LASTZ. If an unextended anchor is a part
//! of a previous alignment, it is not extended."
//!
//! We hash coarse grid cells along each produced alignment path keyed by
//! (diagonal bucket, target bucket); an anchor whose own cell (or a
//! neighbouring cell) is occupied is absorbed.

use align::{AlignOp, Alignment};
use std::collections::HashSet;

/// Grid quantisation along the diagonal axis.
const DIAG_SHIFT: u32 = 5; // 32-base diagonal buckets
/// Grid quantisation along the target axis.
const T_SHIFT: u32 = 6; // 64-base target buckets

/// Tracks which (diagonal, target) grid cells are already covered.
#[derive(Debug, Clone, Default)]
pub struct AbsorptionGrid {
    cells: HashSet<(i64, i64)>,
}

impl AbsorptionGrid {
    /// An empty grid.
    pub fn new() -> AbsorptionGrid {
        AbsorptionGrid::default()
    }

    /// Number of occupied cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are occupied.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn key(t: usize, q: usize) -> (i64, i64) {
        let diag = t as i64 - q as i64;
        (diag >> DIAG_SHIFT, (t as i64) >> T_SHIFT)
    }

    /// Whether the point `(t, q)` falls in (or next to) a covered cell.
    pub fn covers(&self, t: usize, q: usize) -> bool {
        let (d, tb) = Self::key(t, q);
        for dd in -1..=1 {
            for dt in -1..=1 {
                if self.cells.contains(&(d + dd, tb + dt)) {
                    return true;
                }
            }
        }
        false
    }

    /// Marks every grid cell along an alignment's path as covered.
    pub fn insert_alignment(&mut self, alignment: &Alignment) {
        let (mut t, mut q) = (alignment.target_start, alignment.query_start);
        self.cells.insert(Self::key(t, q));
        for &(op, count) in alignment.cigar.runs() {
            let (dt, dq) = match op {
                AlignOp::Match | AlignOp::Subst => (1usize, 1usize),
                AlignOp::Insert => (0, 1),
                AlignOp::Delete => (1, 0),
            };
            for _ in 0..count {
                t += dt;
                q += dq;
                self.cells.insert(Self::key(t, q));
            }
        }
    }
}

/// Fraction of `inner`'s span covered by `outer`, taken as the minimum
/// over the target and query axes (1.0 = fully contained on both).
///
/// Used to resolve staggered re-extensions: an anchor just past an
/// alignment's X-drop stopping point re-extends across the same region,
/// producing a near-duplicate that absorption's point test cannot catch.
// lint: allow(determinism): integer spans in, one IEEE-exact div/min each — correctly rounded, bit-stable across platforms
pub fn containment_fraction(inner: &Alignment, outer: &Alignment) -> f64 {
    let t_ov = span_overlap(
        inner.target_start,
        inner.target_end,
        outer.target_start,
        outer.target_end,
    );
    let q_ov = span_overlap(
        inner.query_start,
        inner.query_end,
        outer.query_start,
        outer.query_end,
    );
    let t_frac = t_ov as f64 / inner.target_span().max(1) as f64;
    let q_frac = q_ov as f64 / inner.query_span().max(1) as f64;
    t_frac.min(q_frac)
}

/// Merges a freshly extended alignment into the kept set:
///
/// * if the candidate is mostly contained (>70% both axes) in a kept
///   alignment, it is a duplicate → dropped (returns `false`);
/// * any kept alignments mostly contained in the candidate with lower
///   scores are replaced by it;
/// * otherwise the candidate is simply added.
pub fn merge_into_kept(kept: &mut Vec<Alignment>, candidate: Alignment) -> bool {
    // lint: allow(determinism): exact literal threshold compared against an IEEE-exact ratio — same result everywhere
    const CONTAINED: f64 = 0.7;
    for existing in kept.iter() {
        if containment_fraction(&candidate, existing) > CONTAINED
            && existing.score >= candidate.score
        {
            return false;
        }
    }
    kept.retain(|existing| {
        !(containment_fraction(existing, &candidate) > CONTAINED
            && existing.score <= candidate.score)
    });
    kept.push(candidate);
    true
}

fn span_overlap(a0: usize, a1: usize, b0: usize, b1: usize) -> usize {
    a1.min(b1).saturating_sub(a0.max(b0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::Cigar;

    fn alignment(t: usize, q: usize, len: u32) -> Alignment {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, len);
        Alignment::new(t, q, c, 0)
    }

    #[test]
    fn anchor_on_path_is_absorbed() {
        let mut grid = AbsorptionGrid::new();
        grid.insert_alignment(&alignment(1000, 2000, 500));
        assert!(grid.covers(1250, 2250)); // on the path
        assert!(grid.covers(1240, 2245)); // near the path
        assert!(!grid.covers(1250, 3500)); // far-off diagonal
        assert!(!grid.covers(90_000, 91_000)); // far away entirely
    }

    #[test]
    fn gapped_path_is_tracked() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 100);
        c.push(AlignOp::Delete, 200); // diagonal shifts by 200
        c.push(AlignOp::Match, 100);
        let a = Alignment::new(0, 0, c, 0);
        let mut grid = AbsorptionGrid::new();
        grid.insert_alignment(&a);
        assert!(grid.covers(50, 50)); // before the gap
        assert!(grid.covers(350, 150)); // after the gap (diag +200)
        assert!(!grid.covers(350, 350)); // the old diagonal past the gap
    }

    #[test]
    fn containment_fraction_basics() {
        let big = alignment(0, 0, 1000);
        let inside = alignment(100, 100, 300);
        assert_eq!(containment_fraction(&inside, &big), 1.0);
        assert!(containment_fraction(&big, &inside) < 0.5);
        // Paralog: same target region, distant query region — 0 on the
        // query axis.
        let p = alignment(0, 5000, 1000);
        assert_eq!(containment_fraction(&p, &big), 0.0);
    }

    #[test]
    fn merge_drops_contained_duplicates() {
        let mut kept = Vec::new();
        let mut a = alignment(0, 0, 1000);
        a.score = 10_000;
        assert!(merge_into_kept(&mut kept, a));
        let mut dup = alignment(100, 100, 800);
        dup.score = 7_000;
        assert!(!merge_into_kept(&mut kept, dup));
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn merge_replaces_shorter_kept_with_longer_candidate() {
        let mut kept = Vec::new();
        let mut short = alignment(100, 100, 800);
        short.score = 7_000;
        assert!(merge_into_kept(&mut kept, short));
        let mut long = alignment(0, 0, 5000);
        long.score = 40_000;
        assert!(merge_into_kept(&mut kept, long));
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 40_000);
    }

    #[test]
    fn merge_keeps_distinct_and_paralogous_alignments() {
        let mut kept = Vec::new();
        let mut a = alignment(0, 0, 1000);
        a.score = 10_000;
        let mut b = alignment(5000, 5000, 1000);
        b.score = 9_000;
        let mut paralog = alignment(0, 9000, 1000);
        paralog.score = 8_000;
        assert!(merge_into_kept(&mut kept, a));
        assert!(merge_into_kept(&mut kept, b));
        assert!(merge_into_kept(&mut kept, paralog));
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn empty_grid_covers_nothing() {
        let grid = AbsorptionGrid::new();
        assert!(grid.is_empty());
        assert!(!grid.covers(0, 0));
        assert_eq!(grid.len(), 0);
    }
}
