//! Assembly-level (genome-vs-genome) alignment driver.
//!
//! Whole-genome alignment runs every query chromosome against every
//! target chromosome (LASTZ is invoked per chromosome pair and the
//! results are chained together, §V-B). This driver does the same over
//! [`genome::assembly::Assembly`] inputs, tagging each alignment with its
//! chromosome pair.

use crate::config::WgaParams;
use crate::report::{StageTimings, WgaAlignment};
use genome::assembly::Assembly;
use hwsim::Workload;
use seed::SeedTable;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One alignment located on a chromosome pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocatedAlignment {
    /// Target chromosome name.
    pub target_chrom: String,
    /// Query chromosome name.
    pub query_chrom: String,
    /// The alignment (coordinates within the named chromosomes).
    pub aligned: WgaAlignment,
}

/// Assembly-level run output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AssemblyReport {
    /// All alignments across chromosome pairs.
    pub alignments: Vec<LocatedAlignment>,
    /// Aggregate workload.
    pub workload: Workload,
    /// Aggregate stage timings.
    pub timings: StageTimings,
}

impl AssemblyReport {
    /// Total matched base pairs.
    pub fn total_matches(&self) -> u64 {
        self.alignments
            .iter()
            .map(|a| a.aligned.alignment.matches())
            .sum()
    }

    /// Alignments on one chromosome pair.
    pub fn for_pair(&self, target_chrom: &str, query_chrom: &str) -> Vec<&LocatedAlignment> {
        self.alignments
            .iter()
            .filter(|a| a.target_chrom == target_chrom && a.query_chrom == query_chrom)
            .collect()
    }
}

/// Aligns every query chromosome against every target chromosome.
///
/// The seed table is built once per target chromosome and reused across
/// query chromosomes, as a production aligner would.
///
/// # Examples
///
/// ```
/// use genome::assembly::Assembly;
/// use wga_core::{config::WgaParams, genome_pipeline::align_assemblies};
///
/// let mut target = Assembly::new("t");
/// target.push("chrI", "TTTTACGGTCAGTCGATTGCAGTCCATGGACTGATCTTTT".repeat(20).parse()?);
/// let mut query = Assembly::new("q");
/// query.push("chr1", "GGGGACGGTCAGTCGATTGCAGTCCATGGACTGATCGGGG".repeat(20).parse()?);
///
/// let report = align_assemblies(&WgaParams::darwin_wga(), &target, &query);
/// assert!(report.total_matches() > 500);
/// assert_eq!(report.alignments[0].target_chrom, "chrI");
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn align_assemblies(
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
) -> AssemblyReport {
    let mut out = AssemblyReport::default();
    for tchrom in target.chromosomes() {
        let table_start = Instant::now();
        let table = SeedTable::build(
            &tchrom.sequence,
            &params.seed_pattern,
            params.max_seed_occurrences,
        );
        out.timings.seeding += table_start.elapsed();
        for qchrom in query.chromosomes() {
            let report = crate::pipeline::WgaPipeline::new(params.clone()).run_with_table(
                &table,
                &tchrom.sequence,
                &qchrom.sequence,
            );
            out.workload.merge(&report.workload);
            out.timings.merge(&report.timings);
            for aligned in report.alignments {
                out.alignments.push(LocatedAlignment {
                    target_chrom: tchrom.name.clone(),
                    query_chrom: qchrom.name.clone(),
                    aligned,
                });
            }
        }
    }
    out.alignments
        .sort_by_key(|a| std::cmp::Reverse(a.aligned.alignment.score));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_chrom_assemblies() -> (Assembly, Assembly) {
        let mut rng = StdRng::seed_from_u64(21);
        let p1 = SyntheticPair::generate(15_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let p2 = SyntheticPair::generate(12_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let mut target = Assembly::new("targ1");
        target.push("chrI", p1.target.sequence.clone());
        target.push("chrII", p2.target.sequence.clone());
        let mut query = Assembly::new("quer1");
        query.push("chr1", p1.query.sequence.clone());
        query.push("chr2", p2.query.sequence.clone());
        (target, query)
    }

    #[test]
    fn homologous_chromosomes_attract_the_alignments() {
        let (target, query) = two_chrom_assemblies();
        let report = align_assemblies(&WgaParams::darwin_wga(), &target, &query);
        assert!(report.total_matches() > 15_000);
        let homologous: u64 = report
            .for_pair("chrI", "chr1")
            .iter()
            .chain(report.for_pair("chrII", "chr2").iter())
            .map(|a| a.aligned.alignment.matches())
            .sum();
        let paralogous: u64 = report
            .for_pair("chrI", "chr2")
            .iter()
            .chain(report.for_pair("chrII", "chr1").iter())
            .map(|a| a.aligned.alignment.matches())
            .sum();
        assert!(
            homologous > 20 * paralogous.max(1),
            "homologous {homologous} vs cross {paralogous}"
        );
    }

    #[test]
    fn alignments_validate_within_their_chromosomes() {
        let (target, query) = two_chrom_assemblies();
        let report = align_assemblies(&WgaParams::darwin_wga(), &target, &query);
        for la in &report.alignments {
            let t = &target.chromosome(&la.target_chrom).unwrap().sequence;
            let q = &query.chromosome(&la.query_chrom).unwrap().sequence;
            la.aligned.alignment.validate(t, q).unwrap();
        }
    }

    #[test]
    fn empty_assemblies_produce_empty_report() {
        let report = align_assemblies(
            &WgaParams::darwin_wga(),
            &Assembly::new("a"),
            &Assembly::new("b"),
        );
        assert!(report.alignments.is_empty());
        assert_eq!(report.total_matches(), 0);
    }
}
