//! Text-mode genome-browser tracks (Figs. 3 and 9).
//!
//! The paper's qualitative figures are UCSC browser snapshots: a gene
//! track above chain tracks, thick blocks for aligning bases, thin lines
//! for single-sided gaps, double lines for double-sided gaps. This module
//! renders the same view as text, one row per chain:
//!
//! ```text
//! genes   ====        =======         ====
//! chain 1 ██████──────██████══════════████
//! ```
//!
//! Legend: `█` aligning bases, `─` gap in the query only, `═` double-sided
//! gap, space = outside the chain.

use crate::chainer::Chain;
use align::Alignment;
use genome::annotation::Interval;

/// Renders a browser-style view of a target region.
///
/// `width` is the character width of the rendered tracks; `region` is the
/// half-open target interval shown.
pub fn render(
    region: (usize, usize),
    width: usize,
    genes: &[Interval],
    chains: &[Chain],
    alignments: &[Alignment],
    max_chains: usize,
) -> String {
    assert!(width > 0, "width must be positive");
    let (start, end) = region;
    assert!(end > start, "empty region");
    let scale = |pos: usize| -> usize {
        let pos = pos.clamp(start, end);
        ((pos - start) as u128 * width as u128 / (end - start) as u128) as usize
    };

    let mut out = String::new();
    out.push_str(&format!(
        "region {}..{} ({} bp, {:.0} bp/char)\n",
        start,
        end,
        end - start,
        (end - start) as f64 / width as f64
    ));

    // Gene track.
    let mut gene_row = vec![' '; width + 1];
    for gene in genes {
        if gene.end <= start || gene.start >= end {
            continue;
        }
        for c in gene_row
            .iter_mut()
            .take(scale(gene.end).max(scale(gene.start) + 1))
            .skip(scale(gene.start))
        {
            *c = '=';
        }
    }
    out.push_str(&format!("{:<10}{}\n", "genes", trim_row(&gene_row)));

    // Chain tracks.
    for (rank, chain) in chains.iter().take(max_chains).enumerate() {
        let mut row = vec![' '; width + 1];
        // Between consecutive members: single or double gap line.
        for pair in chain.members.windows(2) {
            let a = &alignments[pair[0]];
            let b = &alignments[pair[1]];
            let gap_t = b.target_start.saturating_sub(a.target_end);
            let gap_q = b.query_start.saturating_sub(a.query_end);
            let ch = if gap_t > 0 && gap_q > 0 {
                '═'
            } else {
                '─'
            };
            for c in row
                .iter_mut()
                .take(scale(b.target_start))
                .skip(scale(a.target_end))
            {
                *c = ch;
            }
        }
        // Member blocks (drawn after gap lines so blocks win).
        for &m in &chain.members {
            let a = &alignments[m];
            if a.target_end <= start || a.target_start >= end {
                continue;
            }
            for c in row
                .iter_mut()
                .take(scale(a.target_end).max(scale(a.target_start) + 1))
                .skip(scale(a.target_start))
            {
                *c = '█';
            }
        }
        out.push_str(&format!(
            "{:<10}{}  (score {})\n",
            format!("chain {}", rank + 1),
            trim_row(&row),
            chain.score
        ));
    }
    out
}

fn trim_row(row: &[char]) -> String {
    let s: String = row.iter().collect();
    s.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::{AlignOp, Cigar};

    fn block(t: usize, q: usize, len: u32) -> Alignment {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, len);
        Alignment::new(t, q, c, len as i64 * 90)
    }

    fn simple_chain(members: Vec<usize>, score: i64) -> Chain {
        Chain { members, score }
    }

    #[test]
    fn renders_blocks_and_gap_styles() {
        let alignments = vec![
            block(0, 0, 100),
            block(200, 100, 100),  // target gap only → '─'
            block(400, 300, 100),  // both gaps → '═'
        ];
        let chains = vec![simple_chain(vec![0, 1, 2], 10_000)];
        let genes = vec![Interval::new(50, 150, "g1")];
        let text = render((0, 500), 50, &genes, &chains, &alignments, 5);
        assert!(text.contains('█'), "{text}");
        assert!(text.contains('─'), "{text}");
        assert!(text.contains('═'), "{text}");
        assert!(text.contains('='), "{text}");
        assert!(text.contains("score 10000"));
        // Three tracks: header + genes + 1 chain.
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn max_chains_limits_rows() {
        let alignments = vec![block(0, 0, 10), block(50, 50, 10)];
        let chains = vec![simple_chain(vec![0], 900), simple_chain(vec![1], 800)];
        let text = render((0, 100), 20, &[], &chains, &alignments, 1);
        assert!(text.contains("chain 1"));
        assert!(!text.contains("chain 2"));
    }

    #[test]
    fn out_of_region_entities_are_clipped() {
        let alignments = vec![block(1000, 1000, 50)];
        let chains = vec![simple_chain(vec![0], 500)];
        let text = render((0, 100), 20, &[], &chains, &alignments, 5);
        assert!(!text.contains('█'));
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn rejects_empty_region() {
        render((10, 10), 20, &[], &[], &[], 1);
    }
}
