//! Unified observability layer: trace spans, counters, histograms.
//!
//! Every driver (serial [`crate::pipeline::WgaPipeline`], the
//! panic-isolated parallel driver, the streaming dataflow executor and
//! [`crate::genome_pipeline::align_assemblies_observed`]) threads an
//! [`Obs`] handle through its hot loops. The handle is a `Copy`
//! two-word value wrapping an optional `&dyn Recorder`; when
//! observability is off (the default for every pre-existing entry
//! point) the option is `None` and every instrumentation call reduces
//! to a single branch — the overhead contract pinned by the
//! `obs_overhead` bench binary.
//!
//! Three primitives:
//!
//! * **Spans** ([`Span`]) — named, timestamped intervals (`seed`,
//!   `filter.batch`, `extend.tile`, `chain`, `checkpoint`, …) gathered
//!   in per-worker [`SpanBuf`] buffers and flushed to the recorder at
//!   batch boundaries, so the shared span list is touched once per
//!   batch rather than once per tile.
//! * **Counters** ([`Counter`]) — relaxed atomic funnel totals (pairs
//!   done, filter tiles, DP cells, …) cheap enough for live progress
//!   reporting.
//! * **Histograms** ([`Log2Histogram`]) — log2-bucketed latency and
//!   size distributions (per-tile filter latency, per-tile DP cells,
//!   extension tiles per anchor).
//!
//! The concrete [`TraceRecorder`] renders everything as JSONL with
//! deterministic integer-only fields (see [`Span::to_json_line`] and
//! [`TraceRecorder::write_trace`]); the [`NullRecorder`] ignores
//! everything and reports itself disabled so [`Obs::new`] folds it into
//! the no-op path.

mod histogram;
mod progress;

pub use histogram::{Log2Histogram, LOG2_BUCKETS};
pub use progress::{render_progress_line, ProgressMeter, ProgressSnapshot};

use crate::report::Strand;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// `pair` value for spans not attributed to a chromosome pair.
pub const NO_PAIR: u64 = u64::MAX;

/// Version stamped into the `{"schema":N}` header line of every trace
/// written by [`TraceRecorder::write_trace`]. Bumped when the JSONL
/// shape changes incompatibly; readers (`wga profile`) reject traces
/// with a higher major and treat headerless traces as schema 1.
///
/// * schema 1 — spans without `tid`/`id`/`parent`, no header line.
/// * schema 2 — header line, per-span `tid`/`id`/`parent`, `extend`
///   lane spans, `queue.wait` spans, the `extend.rows` counter.
pub const TRACE_SCHEMA: u64 = 2;

/// `parent`/`id` value for spans with no parent (or, for `id`, spans
/// recorded while observability was off).
pub const NO_SPAN: u64 = 0;

/// Worker-thread ids are assigned lazily, first-use order; 0 is "never
/// assigned" so real ids start at 1.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static NEXT_LOCAL_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Small stable id for the calling thread (1-based, assigned on first
/// use). Ids are process-wide, so every recorder in a run shares one
/// numbering and a worker keeps its id across pairs.
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Allocates a process-unique span id on the calling thread: the
/// thread id in the high bits, a per-thread sequence in the low 40.
/// Never returns [`NO_SPAN`].
fn alloc_span_id() -> u64 {
    let tid = thread_id();
    NEXT_LOCAL_SPAN.with(|n| {
        let next = n.get() + 1;
        n.set(next);
        (tid << 40) | next
    })
}

/// `strand` code for forward-strand spans.
pub const STRAND_FWD: u8 = 0;
/// `strand` code for reverse-strand spans.
pub const STRAND_REV: u8 = 1;
/// `strand` code for spans with no strand (seed-table build, checkpoint…).
pub const STRAND_NA: u8 = 2;

/// Trace code for a pipeline strand.
pub fn strand_code(strand: Strand) -> u8 {
    match strand {
        Strand::Forward => STRAND_FWD,
        Strand::Reverse => STRAND_REV,
    }
}

/// Names of the spans the drivers emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanName {
    /// D-SOFT seeding of one strand of one pair.
    Seed,
    /// Seed-table construction for one target chromosome.
    SeedTable,
    /// One batch of gapped filter tiles (a whole strand in the serial
    /// driver, one worker batch in the parallel/dataflow drivers).
    FilterBatch,
    /// GACT-X extension of one surviving anchor (items = tiles).
    ExtendTile,
    /// Chaining of one pair's alignments (CLI post-pass).
    Chain,
    /// One checkpoint-journal append.
    Checkpoint,
    /// Modeled BSW accelerator time for the whole run (hwsim bridge).
    HwsimBsw,
    /// Modeled GACT-X accelerator time for the whole run (hwsim bridge).
    HwsimGactx,
    /// One injected fault (`seq` = hook code, `items` = fault-kind
    /// code), the audit trail of a chaos run.
    Fault,
    /// The whole extension commit loop of one (pair, strand) lane
    /// (`items` = anchors in, `cells` = extension DP cells); the
    /// `extend.tile` spans it encloses carry its id as their `parent`.
    Extend,
    /// Time a dataflow worker spent blocked on a bounded queue
    /// (`seq` = queue code: 0 producer→filter push, 1 filter pop,
    /// 2 extension pop, 3 collector pop).
    QueueWait,
}

impl SpanName {
    /// Every span name, for schema tests and documentation.
    pub const ALL: [SpanName; 11] = [
        SpanName::Seed,
        SpanName::SeedTable,
        SpanName::FilterBatch,
        SpanName::ExtendTile,
        SpanName::Chain,
        SpanName::Checkpoint,
        SpanName::HwsimBsw,
        SpanName::HwsimGactx,
        SpanName::Fault,
        SpanName::Extend,
        SpanName::QueueWait,
    ];

    /// The wire name used in trace JSONL lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanName::Seed => "seed",
            SpanName::SeedTable => "seed.table",
            SpanName::FilterBatch => "filter.batch",
            SpanName::ExtendTile => "extend.tile",
            SpanName::Chain => "chain",
            SpanName::Checkpoint => "checkpoint",
            SpanName::HwsimBsw => "hwsim.bsw",
            SpanName::HwsimGactx => "hwsim.gactx",
            SpanName::Fault => "fault",
            SpanName::Extend => "extend",
            SpanName::QueueWait => "queue.wait",
        }
    }
}

/// One recorded interval. All fields are integers so the JSONL output
/// is deterministic in shape (values are wall-clock measurements and
/// naturally vary run to run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What was measured.
    pub name: SpanName,
    /// Pair id (`target_index * query_count + query_index`), or
    /// [`NO_PAIR`] for spans outside any pair.
    pub pair: u64,
    /// [`STRAND_FWD`], [`STRAND_REV`] or [`STRAND_NA`].
    pub strand: u8,
    /// Sequence number disambiguating sibling spans (batch index,
    /// anchor index, …).
    pub seq: u64,
    /// Microseconds since the observation epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Work items covered (tiles, hits, alignments — span-specific).
    pub items: u64,
    /// DP cells covered, where meaningful (0 otherwise).
    pub cells: u64,
    /// Id of the worker thread that recorded the span ([`thread_id`]).
    pub tid: u64,
    /// Process-unique span id ([`NO_SPAN`] only in hand-built spans).
    pub id: u64,
    /// Id of the enclosing span, or [`NO_SPAN`] for top-level spans.
    /// Today only `extend.tile` spans nest (under their lane's
    /// `extend` span).
    pub parent: u64,
}

impl Span {
    /// Renders the span as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"span\":\"{}\",\"pair\":{},\"strand\":{},\"seq\":{},\
             \"start_us\":{},\"dur_us\":{},\"items\":{},\"cells\":{},\
             \"tid\":{},\"id\":{},\"parent\":{}}}",
            self.name.as_str(),
            self.pair,
            self.strand,
            self.seq,
            self.start_us,
            self.dur_us,
            self.items,
            self.cells,
            self.tid,
            self.id,
            self.parent
        )
    }
}

/// Funnel counters maintained by the recorder (relaxed atomics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Chromosome pairs finished (computed or replayed from a journal).
    PairsDone,
    /// Gapped filter tiles executed.
    FilterTiles,
    /// DP cells spent in the gapped filter.
    FilterCells,
    /// Anchors that survived the filter threshold.
    AnchorsPassed,
    /// DP cells spent in GACT-X extension.
    ExtensionCells,
    /// DP rows spent in GACT-X extension (with cells and tiles, enough
    /// to replay the GACT-X cycle model from a trace).
    ExtensionRows,
    /// Alignments kept after extension.
    AlignmentsKept,
    /// Speculative extensions computed by shard helpers but thrown away
    /// unconsumed (anchor absorbed or truncated before commit).
    SpecDiscard,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 8;

impl Counter {
    /// Every counter, for trace rendering and schema tests.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::PairsDone,
        Counter::FilterTiles,
        Counter::FilterCells,
        Counter::AnchorsPassed,
        Counter::ExtensionCells,
        Counter::ExtensionRows,
        Counter::AlignmentsKept,
        Counter::SpecDiscard,
    ];

    /// The wire name used in trace JSONL `counter` lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            Counter::PairsDone => "pairs.done",
            Counter::FilterTiles => "filter.tiles",
            Counter::FilterCells => "filter.cells",
            Counter::AnchorsPassed => "anchors.passed",
            Counter::ExtensionCells => "extend.cells",
            Counter::ExtensionRows => "extend.rows",
            Counter::AlignmentsKept => "alignments.kept",
            Counter::SpecDiscard => "shard.spec_discard",
        }
    }
}

/// Histogram families maintained by the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Wall-clock nanoseconds per gapped filter tile.
    FilterTileNs,
    /// DP cells per gapped filter tile.
    FilterTileCells,
    /// GACT-X tiles per extended anchor.
    ExtendTilesPerAnchor,
}

/// Number of [`HistKind`] variants.
pub const HIST_COUNT: usize = 3;

impl HistKind {
    /// Every histogram kind, for rendering and schema tests.
    pub const ALL: [HistKind; HIST_COUNT] = [
        HistKind::FilterTileNs,
        HistKind::FilterTileCells,
        HistKind::ExtendTilesPerAnchor,
    ];

    /// The wire name used in trace JSONL `hist` lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            HistKind::FilterTileNs => "filter.tile_ns",
            HistKind::FilterTileCells => "filter.tile_cells",
            HistKind::ExtendTilesPerAnchor => "extend.tiles_per_anchor",
        }
    }
}

/// Sink for observability events. All methods default to no-ops so a
/// recorder only implements what it wants; `Sync` because one recorder
/// is shared by every worker thread.
pub trait Recorder: Sync {
    /// Whether instrumentation should run at all. [`Obs::new`] maps a
    /// disabled recorder to the `None` fast path, so a recorder that
    /// returns `false` here never sees another call.
    fn enabled(&self) -> bool {
        false
    }

    /// Takes ownership of a batch of finished spans. Implementations
    /// must leave `spans` empty (the buffer is reused).
    fn flush_spans(&self, spans: &mut Vec<Span>) {
        spans.clear();
    }

    /// Adds `n` to a funnel counter.
    fn add(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// Records one histogram sample.
    fn observe(&self, hist: HistKind, value: u64) {
        let _ = (hist, value);
    }

    /// Announces the total number of pairs the run will process, for
    /// progress/ETA reporting.
    fn set_total_pairs(&self, pairs: u64) {
        let _ = pairs;
    }
}

/// A recorder that ignores everything. Reports itself disabled, so
/// `Obs::new(&NullRecorder)` behaves exactly like [`Obs::off`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// The observation handle threaded through the drivers.
///
/// `Copy` and a few words wide; cloning it into worker closures is
/// free. When disabled (`rec == None`) every method is a branch on a
/// register — no time is read, no atomics touched. The optional fault
/// injector rides along the same way: `None` (the default everywhere)
/// makes every `fault_gate` call a single branch.
#[derive(Clone, Copy)]
pub struct Obs<'a> {
    rec: Option<&'a dyn Recorder>,
    fault: Option<&'a crate::faultsim::FaultInjector>,
    epoch: Instant,
    pair: u64,
    mute_totals: bool,
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.rec.is_some())
            .field("faults", &self.fault.is_some())
            .field("pair", &self.pair)
            .finish()
    }
}

impl Obs<'static> {
    /// The disabled handle — what every pre-existing entry point uses.
    pub fn off() -> Obs<'static> {
        Obs {
            rec: None,
            fault: None,
            epoch: Instant::now(),
            pair: NO_PAIR,
            mute_totals: false,
        }
    }
}

impl<'a> Obs<'a> {
    /// A handle feeding `recorder`. A recorder whose
    /// [`Recorder::enabled`] returns `false` is folded into the
    /// disabled fast path.
    pub fn new(recorder: &'a dyn Recorder) -> Obs<'a> {
        Obs {
            rec: recorder.enabled().then_some(recorder),
            fault: None,
            epoch: Instant::now(),
            pair: NO_PAIR,
            mute_totals: false,
        }
    }

    /// A copy of this handle attributing subsequent spans to `pair`.
    pub fn with_pair(self, pair: u64) -> Obs<'a> {
        Obs { pair, ..self }
    }

    /// A copy of this handle that drops [`Obs::set_total_pairs`] calls.
    /// An orchestrator that announces a grand total up front (the
    /// many-genome driver) hands this to the per-pair pipelines so
    /// their own per-run totals cannot clobber it.
    pub fn with_muted_totals(self) -> Obs<'a> {
        Obs {
            mute_totals: true,
            ..self
        }
    }

    /// A copy of this handle carrying (or dropping) a fault injector.
    /// Hook points reach it through [`Obs::fault_gate`].
    pub fn with_fault(self, fault: Option<&'a crate::faultsim::FaultInjector>) -> Obs<'a> {
        Obs { fault, ..self }
    }

    /// The fault injector riding on this handle, if any.
    pub fn fault(&self) -> Option<&'a crate::faultsim::FaultInjector> {
        self.fault
    }

    /// Runs the fault-injection gate for `hook` at this handle's pair.
    /// A single branch when no injector is attached. May sleep, return
    /// after an injected-error retry, or panic (injected panics and
    /// exhausted retries escalate through the executors' existing
    /// pair-level panic isolation) — see [`crate::faultsim`].
    #[inline]
    pub fn fault_gate(&self, hook: crate::faultsim::Hook) {
        if let Some(injector) = self.fault {
            injector.gate(hook, self);
        }
    }

    /// Records one injected fault as a [`SpanName::Fault`] span
    /// (`seq` = hook code, `items` = fault-kind code). Called by the
    /// injector itself so every injection is auditable in the trace.
    pub fn fault_span(&self, hook_code: u64, kind_code: u64) {
        if let Some(rec) = self.rec {
            let now = Instant::now();
            let mut spans = vec![Span {
                name: SpanName::Fault,
                pair: self.pair,
                strand: STRAND_NA,
                seq: hook_code,
                start_us: now.saturating_duration_since(self.epoch).as_micros() as u64,
                dur_us: 0,
                items: kind_code,
                cells: 0,
                tid: thread_id(),
                id: alloc_span_id(),
                parent: NO_SPAN,
            }];
            rec.flush_spans(&mut spans);
        }
    }

    /// The pair this handle attributes spans to ([`NO_PAIR`] if unset).
    pub fn pair(&self) -> u64 {
        self.pair
    }

    /// Whether a live recorder is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Adds `n` to a funnel counter (no-op when disabled).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(rec) = self.rec {
            rec.add(counter, n);
        }
    }

    /// Records one histogram sample (no-op when disabled).
    #[inline]
    pub fn observe(&self, hist: HistKind, value: u64) {
        if let Some(rec) = self.rec {
            rec.observe(hist, value);
        }
    }

    /// Forwards the run's total pair count to the recorder (dropped on
    /// a [`Obs::with_muted_totals`] handle).
    pub fn set_total_pairs(&self, pairs: u64) {
        if let Some(rec) = self.rec {
            if !self.mute_totals {
                rec.set_total_pairs(pairs);
            }
        }
    }

    /// Starts a timer, or an inert one when disabled. The single
    /// branch + optional clock read is the entire per-call cost on the
    /// disabled path.
    #[inline]
    pub fn timer(&self) -> SpanTimer {
        SpanTimer(self.rec.map(|_| Instant::now()))
    }

    /// Per-filter-tile instrumentation: latency + cell histograms and
    /// the tile/cell counters. `timer` must come from [`Obs::timer`]
    /// taken just before the tile ran.
    #[inline]
    pub fn filter_tile(&self, timer: &SpanTimer, cells: u64) {
        if let (Some(rec), Some(start)) = (self.rec, timer.0) {
            rec.observe(HistKind::FilterTileNs, start.elapsed().as_nanos() as u64);
            rec.observe(HistKind::FilterTileCells, cells);
            rec.add(Counter::FilterTiles, 1);
            rec.add(Counter::FilterCells, cells);
        }
    }

    /// Per-extended-anchor instrumentation: tiles-per-anchor histogram
    /// and the extension cell/row counters.
    #[inline]
    pub fn extension_anchor(&self, tiles: u64, cells: u64, rows: u64) {
        if let Some(rec) = self.rec {
            rec.observe(HistKind::ExtendTilesPerAnchor, tiles);
            rec.add(Counter::ExtensionCells, cells);
            rec.add(Counter::ExtensionRows, rows);
        }
    }

    /// Records the modeled accelerator cycles for the run as a
    /// `hwsim.bsw` and a `hwsim.gactx` span (`items` = tiles,
    /// `cells` = modeled cycles) — the bridge the drift engine in
    /// `wga profile` compares against a replay of the trace's workload
    /// through the same cycle models.
    pub fn hwsim_spans(
        &self,
        bsw_tiles: u64,
        bsw_cycles: u64,
        gactx_tiles: u64,
        gactx_cycles: u64,
    ) {
        let mut buf = self.buffer();
        let bsw_timer = buf.start();
        buf.finish_for_pair(bsw_timer, SpanName::HwsimBsw, NO_PAIR, STRAND_NA, 0, bsw_tiles, bsw_cycles);
        let gactx_timer = buf.start();
        buf.finish_for_pair(
            gactx_timer,
            SpanName::HwsimGactx,
            NO_PAIR,
            STRAND_NA,
            0,
            gactx_tiles,
            gactx_cycles,
        );
        buf.flush();
    }

    /// A fresh span buffer bound to this handle. One per worker/batch;
    /// dropped buffers flush themselves.
    pub fn buffer(&self) -> SpanBuf<'a> {
        SpanBuf {
            obs: *self,
            spans: Vec::new(),
            parent: NO_SPAN,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_span(
        &self,
        spans: &mut Vec<Span>,
        timer: SpanTimer,
        name: SpanName,
        pair: u64,
        strand: u8,
        seq: u64,
        items: u64,
        cells: u64,
        id: u64,
        parent: u64,
    ) {
        let Some(start) = timer.0 else { return };
        spans.push(Span {
            name,
            pair,
            strand,
            seq,
            start_us: start.saturating_duration_since(self.epoch).as_micros() as u64,
            dur_us: start.elapsed().as_micros() as u64,
            items,
            cells,
            tid: thread_id(),
            id: if id == NO_SPAN { alloc_span_id() } else { id },
            parent,
        });
    }
}

/// A started (or inert) span clock from [`Obs::timer`].
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Option<Instant>);

/// Per-worker span buffer. Spans accumulate locally and hit the shared
/// recorder once, at [`SpanBuf::flush`] (called automatically on drop).
pub struct SpanBuf<'a> {
    obs: Obs<'a>,
    spans: Vec<Span>,
    parent: u64,
}

impl std::fmt::Debug for SpanBuf<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanBuf")
            .field("obs", &self.obs)
            .field("buffered", &self.spans.len())
            .finish()
    }
}

impl SpanBuf<'_> {
    /// Starts a timer for a span that will end in [`SpanBuf::finish`].
    #[inline]
    pub fn start(&self) -> SpanTimer {
        self.obs.timer()
    }

    /// Pre-allocates a span id the caller can hand to
    /// [`SpanBuf::finish_with_id`] and advertise as the parent of
    /// enclosed spans before the enclosing span itself finishes.
    /// Returns [`NO_SPAN`] on a disabled handle.
    pub fn alloc_id(&self) -> u64 {
        if self.obs.rec.is_some() {
            alloc_span_id()
        } else {
            NO_SPAN
        }
    }

    /// Sets the `parent` stamped on every span this buffer finishes
    /// from now on ([`NO_SPAN`] to clear).
    pub fn set_parent(&mut self, parent: u64) {
        self.parent = parent;
    }

    /// Completes a span attributed to the handle's pair.
    pub fn finish(
        &mut self,
        timer: SpanTimer,
        name: SpanName,
        strand: u8,
        seq: u64,
        items: u64,
        cells: u64,
    ) {
        let pair = self.obs.pair;
        self.finish_for_pair(timer, name, pair, strand, seq, items, cells);
    }

    /// Completes a span under a pre-allocated id from
    /// [`SpanBuf::alloc_id`], attributed to the handle's pair. The
    /// buffer's current parent does not apply (a span cannot be its
    /// own ancestor); the span is top-level unless `set_parent` is
    /// layered by hand into `finish_for_pair`.
    #[allow(clippy::too_many_arguments)]
    pub fn finish_with_id(
        &mut self,
        timer: SpanTimer,
        id: u64,
        name: SpanName,
        strand: u8,
        seq: u64,
        items: u64,
        cells: u64,
    ) {
        let obs = self.obs;
        let pair = obs.pair;
        obs.push_span(&mut self.spans, timer, name, pair, strand, seq, items, cells, id, NO_SPAN);
    }

    /// Completes a span attributed to an explicit pair (for buffers
    /// shared across pairs, like the dataflow collector's).
    #[allow(clippy::too_many_arguments)]
    pub fn finish_for_pair(
        &mut self,
        timer: SpanTimer,
        name: SpanName,
        pair: u64,
        strand: u8,
        seq: u64,
        items: u64,
        cells: u64,
    ) {
        let obs = self.obs;
        let parent = self.parent;
        obs.push_span(&mut self.spans, timer, name, pair, strand, seq, items, cells, NO_SPAN, parent);
    }

    /// Hands buffered spans to the recorder, leaving the buffer empty.
    pub fn flush(&mut self) {
        if !self.spans.is_empty() {
            if let Some(rec) = self.obs.rec {
                rec.flush_spans(&mut self.spans);
            } else {
                self.spans.clear();
            }
        }
    }
}

impl Drop for SpanBuf<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The concrete recorder behind `--trace-out` / `--progress`:
/// span list under one mutex (touched once per batch flush), relaxed
/// atomic counters, and fixed log2 histograms.
#[derive(Debug)]
pub struct TraceRecorder {
    spans: Mutex<Vec<Span>>,
    counters: [AtomicU64; COUNTER_COUNT],
    hists: [Log2Histogram; HIST_COUNT],
    total_pairs: AtomicU64,
    started: Instant,
}

impl TraceRecorder {
    /// An empty recorder; the progress clock starts now.
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            spans: Mutex::new(Vec::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Log2Histogram::new()),
            total_pairs: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Current value of one funnel counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// One of the recorder's histograms.
    pub fn histogram(&self, hist: HistKind) -> &Log2Histogram {
        &self.hists[hist as usize]
    }

    /// A copy of every span flushed so far, sorted by
    /// `(start_us, pair, seq)` into a stable timeline.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = self.spans.lock().clone();
        spans.sort_by_key(|s| (s.start_us, s.pair, s.seq, s.id));
        spans
    }

    /// A consistent-enough snapshot for live progress reporting.
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            pairs_done: self.counter(Counter::PairsDone),
            pairs_total: self.total_pairs.load(Ordering::Relaxed),
            filter_tiles: self.counter(Counter::FilterTiles),
            anchors_passed: self.counter(Counter::AnchorsPassed),
            cells: self.counter(Counter::FilterCells) + self.counter(Counter::ExtensionCells),
            elapsed_us: self.started.elapsed().as_micros() as u64,
        }
    }

    /// Writes the full trace as JSONL: a `{"schema":N}` header line
    /// (see [`TRACE_SCHEMA`]), one `{"span":…}` line per span
    /// (timeline order), one `{"counter":…}` line per funnel counter,
    /// then one `{"hist":…}` line per histogram family. Integer fields
    /// only.
    pub fn write_trace<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "{{\"schema\":{TRACE_SCHEMA}}}")?;
        for span in self.spans() {
            writeln!(w, "{}", span.to_json_line())?;
        }
        for counter in Counter::ALL {
            writeln!(
                w,
                "{{\"counter\":\"{}\",\"value\":{}}}",
                counter.as_str(),
                self.counter(counter)
            )?;
        }
        for kind in HistKind::ALL {
            let hist = self.histogram(kind);
            let mut line = format!(
                "{{\"hist\":\"{}\",\"total\":{},\"buckets\":[",
                kind.as_str(),
                hist.total()
            );
            for (i, (bucket, count)) in hist.snapshot().into_iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("[{bucket},{count}]"));
            }
            line.push_str("]}");
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn flush_spans(&self, spans: &mut Vec<Span>) {
        self.spans.lock().append(spans);
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn observe(&self, hist: HistKind, value: u64) {
        self.hists[hist as usize].observe(value);
    }

    fn set_total_pairs(&self, pairs: u64) {
        self.total_pairs.store(pairs, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_folds_to_off_path() {
        let obs = Obs::new(&NullRecorder);
        assert!(!obs.is_enabled());
        let timer = obs.timer();
        obs.filter_tile(&timer, 100); // must be a no-op, not a panic
        let mut buf = obs.buffer();
        let t = buf.start();
        buf.finish(t, SpanName::Seed, STRAND_FWD, 0, 1, 2);
        buf.flush();
        assert!(buf.spans.is_empty());
    }

    #[test]
    fn trace_recorder_collects_spans_counters_hists() {
        let rec = TraceRecorder::new();
        let obs = Obs::new(&rec).with_pair(3);
        assert!(obs.is_enabled());
        assert_eq!(obs.pair(), 3);

        let timer = obs.timer();
        obs.filter_tile(&timer, 640);
        obs.extension_anchor(5, 1_000, 40);
        obs.add(Counter::PairsDone, 1);

        {
            let mut buf = obs.buffer();
            let t = buf.start();
            buf.finish(t, SpanName::FilterBatch, STRAND_FWD, 7, 64, 640);
            // drop flushes
        }

        assert_eq!(rec.counter(Counter::FilterTiles), 1);
        assert_eq!(rec.counter(Counter::FilterCells), 640);
        assert_eq!(rec.counter(Counter::ExtensionCells), 1_000);
        assert_eq!(rec.counter(Counter::ExtensionRows), 40);
        assert_eq!(rec.counter(Counter::PairsDone), 1);
        assert_eq!(rec.histogram(HistKind::ExtendTilesPerAnchor).total(), 1);
        assert_eq!(rec.histogram(HistKind::FilterTileCells).total(), 1);

        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, SpanName::FilterBatch);
        assert_eq!(spans[0].pair, 3);
        assert_eq!(spans[0].seq, 7);
        assert_eq!(spans[0].items, 64);
    }

    #[test]
    fn span_json_line_shape() {
        let span = Span {
            name: SpanName::ExtendTile,
            pair: 2,
            strand: STRAND_REV,
            seq: 9,
            start_us: 10,
            dur_us: 20,
            items: 4,
            cells: 512,
            tid: 1,
            id: (1 << 40) | 6,
            parent: (1 << 40) | 5,
        };
        assert_eq!(
            span.to_json_line(),
            format!(
                "{{\"span\":\"extend.tile\",\"pair\":2,\"strand\":1,\"seq\":9,\
                 \"start_us\":10,\"dur_us\":20,\"items\":4,\"cells\":512,\
                 \"tid\":1,\"id\":{},\"parent\":{}}}",
                (1u64 << 40) | 6,
                (1u64 << 40) | 5
            )
        );
    }

    #[test]
    fn span_ids_are_unique_and_parent_links_hold() {
        let rec = TraceRecorder::new();
        let obs = Obs::new(&rec).with_pair(0);
        let mut buf = obs.buffer();
        let lane_timer = buf.start();
        let lane_id = buf.alloc_id();
        assert_ne!(lane_id, NO_SPAN);
        buf.set_parent(lane_id);
        let t = buf.start();
        buf.finish(t, SpanName::ExtendTile, STRAND_FWD, 0, 1, 10);
        let t = buf.start();
        buf.finish(t, SpanName::ExtendTile, STRAND_FWD, 1, 2, 20);
        buf.set_parent(NO_SPAN);
        buf.finish_with_id(lane_timer, lane_id, SpanName::Extend, STRAND_FWD, 0, 2, 30);
        buf.flush();

        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "span ids must be unique");
        let lane = spans.iter().find(|s| s.name == SpanName::Extend).unwrap();
        assert_eq!(lane.id, lane_id);
        assert_eq!(lane.parent, NO_SPAN);
        for tile in spans.iter().filter(|s| s.name == SpanName::ExtendTile) {
            assert_eq!(tile.parent, lane_id);
            assert_eq!(tile.tid, lane.tid);
        }
    }

    #[test]
    fn write_trace_is_parseable_jsonl() {
        let rec = TraceRecorder::new();
        let obs = Obs::new(&rec);
        let timer = obs.timer();
        obs.filter_tile(&timer, 64);
        let mut buf = obs.with_pair(0).buffer();
        let t = buf.start();
        buf.finish(t, SpanName::Seed, STRAND_FWD, 0, 10, 0);
        buf.flush();

        let mut out = Vec::new();
        rec.write_trace(&mut out).expect("write to Vec");
        let text = String::from_utf8(out).expect("utf8");
        let mut schema = 0;
        let mut spans = 0;
        let mut counters = 0;
        let mut hists = 0;
        for (i, line) in text.lines().enumerate() {
            let value = crate::journal::json::parse(line).expect("valid JSON line");
            if let Some(v) = value.get("schema") {
                assert_eq!(i, 0, "schema header must be the first line");
                assert_eq!(v.as_int(), Some(TRACE_SCHEMA as i128));
                schema += 1;
            } else if value.get("span").is_some() {
                spans += 1;
            } else if value.get("counter").is_some() {
                counters += 1;
            } else {
                assert!(value.get("hist").is_some(), "line is schema, span, counter or hist");
                hists += 1;
            }
        }
        assert_eq!(schema, 1);
        assert_eq!(spans, 1);
        assert_eq!(counters, COUNTER_COUNT);
        assert_eq!(hists, HIST_COUNT);
    }
}
