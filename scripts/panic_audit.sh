#!/usr/bin/env bash
# Panic audit: counts panic-prone call sites (.unwrap() / .expect( /
# panic!) in the NON-TEST code of every library crate and the CLI, and
# fails when the count grows beyond the recorded baseline. New fallible
# code should return typed WgaError results instead of widening the
# panic surface; deliberate additions must update
# scripts/panic_baseline.txt with a justification in the commit.
#
# The bench harness (crates/bench) is exempt: it is a terminal tool that
# exits on bad flags by design.
#
# Test code is excluded by stripping each file from its first
# `#[cfg(test)]` line onward (test modules sit at the bottom of every
# file in this workspace).
set -euo pipefail
cd "$(dirname "$0")/.."

AUDIT_DIRS=(
  crates/core/src
  crates/genome/src
  crates/seed/src
  crates/align/src
  crates/chain/src
  crates/hwsim/src
  crates/protein/src
  src
)

dir_count() {
  local dir="$1" total=0 n f
  for f in $(find "$dir" -name '*.rs' | sort); do
    n=$(awk '/^#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -c -E '\.unwrap\(\)|\.expect\(|panic!' || true)
    total=$((total + n))
  done
  echo "$total"
}

count=0
echo "panic-prone call sites per directory (non-test code):"
for dir in "${AUDIT_DIRS[@]}"; do
  n=$(dir_count "$dir")
  printf '  %-20s %s\n' "$dir" "$n"
  count=$((count + n))
done

# The observability layer must stay panic-free: its hooks run inside
# every hot loop and inside Drop impls, where a panic would abort.
obs=$(dir_count crates/core/src/obs)
if [ "$obs" -ne 0 ]; then
  echo "error: panic audit failed — crates/core/src/obs has $obs panic-prone call sites; the observability layer must have none." >&2
  exit 1
fi

baseline=$(tr -d '[:space:]' < scripts/panic_baseline.txt)
echo "total: $count (baseline: $baseline)"
if [ "$count" -gt "$baseline" ]; then
  echo "error: panic audit failed — $count panic-prone call sites exceed the baseline of $baseline." >&2
  echo "Return wga_core::WgaError instead, or justify the growth and update scripts/panic_baseline.txt." >&2
  exit 1
fi
