//! Chaining and sensitivity metrics for the Darwin-WGA reproduction.
//!
//! Post-processes raw whole-genome alignments into *chains* — the
//! AXTCHAIN role described in §II — using the UCSC `-linearGap=loose`
//! gap-cost schedule ([`gapcost`]), and computes the paper's sensitivity
//! and noise metrics on them ([`metrics`]): top-k chain scores, matched
//! base pairs, exon recovery, the Fig. 2 block-length distribution and
//! the shuffled-genome false-positive rate.
//!
//! # Quick start
//!
//! ```
//! use align::{AlignOp, Alignment, Cigar};
//! use chain::{chainer::chain_alignments, metrics};
//!
//! let mut c = Cigar::new();
//! c.push(AlignOp::Match, 100);
//! let alignments = vec![
//!     Alignment::new(0, 0, c.clone(), 9_000),
//!     Alignment::new(150, 140, c.clone(), 9_000),
//! ];
//! let chains = chain_alignments(&alignments, 3_000);
//! assert_eq!(chains.len(), 1);
//! assert_eq!(metrics::matched_bases(&chains, &alignments), 200);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod browser;
pub mod chainer;
pub mod gapcost;
pub mod liftover;
pub mod metrics;
pub mod net;
pub mod phylo;

pub use chainer::{chain_alignments, Chain};
pub use gapcost::LooseGapCost;
