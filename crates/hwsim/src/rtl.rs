//! Cycle-by-cycle simulation of the BSW systolic array (§IV, Fig. 7).
//!
//! Where the rest of this crate *models* cycle counts analytically, this
//! module actually simulates the array: `Npe` processing elements in a
//! chain, query characters loaded one per PE per stripe, target
//! characters streaming through, every PE computing one DP cell per
//! cycle along the anti-diagonal wavefront. It exists to validate the
//! analytic model and the software kernel against each other:
//!
//! * the simulated array's `Vmax` must equal
//!   [`align::banded::banded_smith_waterman`]'s (same band geometry), and
//! * its cycle count must match [`crate::bsw_array`]'s analytic formula.
//!
//! Dataflow, mirroring the hardware: within a stripe, PE `k` owns query
//! row `stripe·Npe + k`; at stripe cycle `c`, PE `k` computes column
//! `c − k` (pipeline skew). Its inputs are registers written on earlier
//! cycles: its own previous outputs (`E` chain along the row), its left
//! neighbour's previous outputs (`V`/`F` from the row above; the
//! neighbour's one-older `V` for the diagonal), and — for PE 0 — the
//! stripe-boundary row buffer (the paper's dual-port BRAM) written by the
//! previous stripe's last PE.

use crate::bsw_array::BswTileGeometry;
use crate::systolic::ArrayConfig;
use genome::{Base, GapPenalties, SubstitutionMatrix};

const NEG_INF: i64 = i64::MIN / 4;

/// One processing element's registers.
#[derive(Debug, Clone)]
struct Pe {
    /// Query base held for the stripe (`None` past the query end).
    query_base: Option<Base>,
    /// Query row owned this stripe.
    row: usize,
    /// `V` of the cell computed last cycle.
    v_out: i64,
    /// `V` of the cell computed two cycles ago (the neighbour's diagonal).
    v_prev: i64,
    /// `E` of the cell computed last cycle (own left-chain).
    e_out: i64,
    /// `F` of the cell computed last cycle (the neighbour's F chain).
    f_out: i64,
    /// Running per-PE maximum (systolic `Vmax` reduction).
    vmax: i64,
    /// Position of the per-PE maximum.
    vmax_pos: (usize, usize),
}

impl Pe {
    fn fresh(row: usize, query_base: Option<Base>) -> Pe {
        Pe {
            query_base,
            row,
            v_out: NEG_INF,
            v_prev: NEG_INF,
            e_out: NEG_INF,
            f_out: NEG_INF,
            vmax: 0,
            vmax_pos: (0, 0),
        }
    }

    fn advance(&mut self, v: i64, e: i64, f: i64) {
        self.v_prev = self.v_out;
        self.v_out = v;
        self.e_out = e;
        self.f_out = f;
    }

    /// Past the row's band: outputs are dead from here on.
    fn drain(&mut self) {
        self.advance(NEG_INF, NEG_INF, NEG_INF);
    }
}

/// Result of a simulated BSW tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// Maximum cell score (`Vmax`, clamped at 0).
    pub max_score: i64,
    /// Target (column) position of the maximum (0-based).
    pub target_pos: usize,
    /// Query (row) position of the maximum (0-based).
    pub query_pos: usize,
    /// Exact cycles the array spent, including pipeline fill/drain and
    /// the configured per-tile overhead.
    pub cycles: u64,
    /// DP cells computed (cross-check against the software kernel).
    pub cells: u64,
}

/// Simulates one banded Smith-Waterman filter tile on a linear systolic
/// array, cycle by cycle.
///
/// `target` is streamed (columns), `query` is loaded into PEs (rows);
/// the band follows the tile geometry. Sequences longer than
/// `geometry.tile_size` are truncated to the tile window, exactly as the
/// hardware DMA fetches only the tile.
///
/// # Examples
///
/// ```
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
/// use hwsim::bsw_array::BswTileGeometry;
/// use hwsim::rtl::simulate_bsw_tile;
/// use hwsim::systolic::ArrayConfig;
///
/// let s: Sequence = "ACGTACGTACGT".parse()?;
/// let geometry = BswTileGeometry { tile_size: 12, band: 4 };
/// let out = simulate_bsw_tile(
///     s.as_slice(), s.as_slice(),
///     &SubstitutionMatrix::darwin_wga(), &GapPenalties::darwin_wga(),
///     &geometry, &ArrayConfig::fpga(),
/// );
/// assert_eq!(out.max_score, 3 * (91 + 100 + 100 + 91));
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn simulate_bsw_tile(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    geometry: &BswTileGeometry,
    array: &ArrayConfig,
) -> SimOutcome {
    array.validate();
    let npe = array.num_pe;
    let target = &target[..target.len().min(geometry.tile_size)];
    let query = &query[..query.len().min(geometry.tile_size)];
    let n = target.len();
    let m = query.len();
    let (open, extend) = (gaps.open as i64, gaps.extend as i64);

    let mut cycles = array.tile_overhead_cycles;
    let mut cells = 0u64;

    // Stripe-boundary row buffer, 1-indexed by column: boundary_v[j+1] is
    // V of the previous stripe's last row at column j; index 0 is the
    // empty left edge (a 0 "restart" cell under SW clamping).
    let mut boundary_v = vec![0i64; n + 1];
    let mut boundary_f = vec![NEG_INF; n + 1];

    let mut global_vmax = 0i64;
    let mut global_pos = (0usize, 0usize);

    let stripes = m.div_ceil(npe.max(1));
    for stripe in 0..stripes {
        // Columns this stripe touches: the union of its rows' bands
        // (the 0-based equivalent of equations 4–5).
        let first_row = stripe * npe;
        let last_row = (first_row + npe - 1).min(m.saturating_sub(1));
        let jstart = first_row.saturating_sub(geometry.band);
        let jstop = (last_row + geometry.band).min(n.saturating_sub(1));
        if jstart > jstop {
            continue;
        }
        let stripe_cols = jstop - jstart + 1;
        cycles += array.stripe_cycles(stripe_cols as u64);

        let mut pes: Vec<Pe> = (0..npe)
            .map(|k| {
                let row = stripe * npe + k;
                Pe::fresh(row, query.get(row).copied())
            })
            .collect();
        // Index of the stripe's last live PE (writes the boundary row).
        let last_live = (0..npe)
            .rev()
            .find(|&k| pes[k].query_base.is_some())
            .unwrap_or(0);

        let mut next_boundary_v = vec![0i64; n + 1];
        let mut next_boundary_f = vec![NEG_INF; n + 1];

        for cycle in 0..stripe_cols + npe {
            // Reverse order: each PE reads its left neighbour's registers
            // *before* the neighbour overwrites them this cycle.
            for k in (0..npe).rev() {
                let Some(cycle_col) = cycle.checked_sub(k) else {
                    continue; // pipeline not yet filled for this PE
                };
                if cycle_col >= stripe_cols {
                    continue; // drained
                }
                let j = jstart + cycle_col;
                let (row, qbase) = {
                    let pe = &pes[k];
                    (pe.row, pe.query_base)
                };
                let Some(qbase) = qbase else { continue };
                if j + geometry.band < row {
                    continue; // left of this row's band: not started yet
                }
                if j > row + geometry.band {
                    pes[k].drain();
                    continue; // right of this row's band: dead outputs
                }

                // Row-above inputs.
                let (up_v, up_f, diag_v) = if k == 0 {
                    (boundary_v[j + 1], boundary_f[j + 1], boundary_v[j])
                } else {
                    let left = &pes[k - 1];
                    (left.v_out, left.f_out, left.v_prev)
                };
                // Own-row inputs (previous cycle).
                let (left_v, left_e) = {
                    let pe = &pes[k];
                    (pe.v_out, pe.e_out)
                };

                let e_val = (left_v.saturating_sub(open + extend))
                    .max(left_e.saturating_sub(extend));
                let f_val =
                    (up_v.saturating_sub(open + extend)).max(up_f.saturating_sub(extend));
                let sub = if diag_v > NEG_INF / 2 {
                    diag_v + w.score(target[j], qbase) as i64
                } else {
                    // Out-of-band diagonal: SW restart from 0.
                    w.score(target[j], qbase) as i64
                };
                let v = 0i64.max(sub).max(e_val).max(f_val);

                cells += 1;
                let pe = &mut pes[k];
                pe.advance(v, e_val, f_val);
                if v > pe.vmax {
                    pe.vmax = v;
                    pe.vmax_pos = (j, row);
                }
                if k == last_live {
                    next_boundary_v[j + 1] = v;
                    next_boundary_f[j + 1] = f_val;
                }
            }
        }

        for pe in &pes {
            if pe.vmax > global_vmax {
                global_vmax = pe.vmax;
                global_pos = pe.vmax_pos;
            }
        }
        boundary_v = next_boundary_v;
        boundary_f = next_boundary_f;
    }

    SimOutcome {
        max_score: global_vmax,
        target_pos: global_pos.0,
        query_pos: global_pos.1,
        cycles,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::banded::banded_smith_waterman;
    use genome::markov::MarkovModel;
    use genome::Sequence;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn mutated(s: &Sequence, rate: f64, rng: &mut StdRng) -> Sequence {
        s.iter()
            .map(|b| {
                if rng.gen::<f64>() < rate {
                    Base::from_code(rng.gen_range(0..4u8))
                } else {
                    b
                }
            })
            .collect()
    }

    #[test]
    fn simulation_matches_software_kernel_on_related_tiles() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(2);
        let model = MarkovModel::genome_like();
        let geometry = BswTileGeometry::darwin_wga();
        for trial in 0..8 {
            let t = model.generate(320, &mut rng);
            let q = mutated(&t, 0.05 * trial as f64 / 8.0 + 0.02, &mut rng);
            let sim = simulate_bsw_tile(
                t.as_slice(),
                q.as_slice(),
                &w,
                &g,
                &geometry,
                &ArrayConfig::fpga(),
            );
            let sw = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, geometry.band);
            assert_eq!(sim.max_score, sw.max_score, "trial {trial}");
            assert!(sim.max_score > 4000, "tile should pass the filter");
        }
    }

    #[test]
    fn simulation_matches_software_kernel_on_random_tiles() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(5);
        let model = MarkovModel::genome_like();
        let geometry = BswTileGeometry {
            tile_size: 96,
            band: 12,
        };
        for trial in 0..20 {
            let t = model.generate(96, &mut rng);
            let q = model.generate(96, &mut rng);
            let sim = simulate_bsw_tile(
                t.as_slice(),
                q.as_slice(),
                &w,
                &g,
                &geometry,
                &ArrayConfig {
                    num_pe: 8,
                    freq_hz: 1.0e8,
                    tile_overhead_cycles: 0,
                },
            );
            let sw = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, geometry.band);
            assert_eq!(sim.max_score, sw.max_score, "trial {trial}");
        }
    }

    #[test]
    fn simulation_handles_indels_within_band() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(7);
        let model = MarkovModel::genome_like();
        let t = model.generate(320, &mut rng);
        // 10-base deletion in the query at position 150.
        let mut q = t.subsequence(0..150);
        q.extend(t.slice(160..320).iter().copied());
        let geometry = BswTileGeometry::darwin_wga();
        let sim = simulate_bsw_tile(
            t.as_slice(),
            q.as_slice(),
            &w,
            &g,
            &geometry,
            &ArrayConfig::fpga(),
        );
        let sw = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, geometry.band);
        assert_eq!(sim.max_score, sw.max_score);
    }

    #[test]
    fn simulation_cycles_match_analytic_model() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(3);
        let model = MarkovModel::genome_like();
        let t = model.generate(320, &mut rng);
        let q = model.generate(320, &mut rng);
        let geometry = BswTileGeometry::darwin_wga();
        let array = ArrayConfig::fpga();
        let sim = simulate_bsw_tile(t.as_slice(), q.as_slice(), &w, &g, &geometry, &array);
        // The analytic formula uses the paper's 1-based equations 4–5; the
        // simulator computes the exact 0-based band union, which differs
        // by at most one column per stripe.
        let analytic = geometry.cycles_per_tile(&array);
        let stripes = array.stripes(320) as i64;
        let delta = sim.cycles as i64 - analytic as i64;
        assert!(
            delta.abs() <= stripes,
            "sim {} vs analytic {analytic}",
            sim.cycles
        );
    }

    #[test]
    fn short_sequences_are_clipped_not_panicking() {
        let (w, g) = dw();
        let s: Sequence = "ACGTACGT".parse().unwrap();
        let geometry = BswTileGeometry::darwin_wga();
        let sim = simulate_bsw_tile(
            s.as_slice(),
            s.as_slice(),
            &w,
            &g,
            &geometry,
            &ArrayConfig::fpga(),
        );
        assert_eq!(sim.max_score, 2 * (91 + 100 + 100 + 91));
    }

    #[test]
    fn empty_inputs() {
        let (w, g) = dw();
        let geometry = BswTileGeometry::darwin_wga();
        let sim = simulate_bsw_tile(&[], &[], &w, &g, &geometry, &ArrayConfig::fpga());
        assert_eq!(sim.max_score, 0);
        assert_eq!(sim.cells, 0);
    }
}
