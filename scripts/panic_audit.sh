#!/usr/bin/env bash
# Panic audit: counts panic-prone call sites (.unwrap() / .expect( /
# panic!) in the NON-TEST code of the core crates and fails when the
# count grows beyond the recorded baseline. New fallible code should
# return typed WgaError results instead of widening the panic surface;
# deliberate additions must update scripts/panic_baseline.txt with a
# justification in the commit.
#
# Test code is excluded by stripping each file from its first
# `#[cfg(test)]` line onward (test modules sit at the bottom of every
# file in this workspace).
set -euo pipefail
cd "$(dirname "$0")/.."

count=0
for f in $(find crates/core/src crates/genome/src crates/seed/src -name '*.rs' | sort); do
  n=$(awk '/^#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -c -E '\.unwrap\(\)|\.expect\(|panic!' || true)
  count=$((count + n))
done

baseline=$(tr -d '[:space:]' < scripts/panic_baseline.txt)
echo "panic-prone call sites in non-test code: $count (baseline: $baseline)"
if [ "$count" -gt "$baseline" ]; then
  echo "error: panic audit failed — $count panic-prone call sites exceed the baseline of $baseline." >&2
  echo "Return wga_core::WgaError instead, or justify the growth and update scripts/panic_baseline.txt." >&2
  exit 1
fi
