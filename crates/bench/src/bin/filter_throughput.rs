//! Filter-engine throughput: scalar BSW vs the batched wavefront engine
//! vs the explicit-SIMD wavefront engine.
//!
//! Streams a fixed ladder of filter tiles along the main diagonal of a
//! synthetic genome pair at several phylogenetic distances and times the
//! three BSW implementations on the identical tile set:
//!
//! * **scalar** — [`align::banded::banded_smith_waterman`] per tile
//!   (row-major, allocates its DP rows per call);
//! * **batched** — [`align::bsw_fast::BswBatch`]: pair encoded once,
//!   anti-diagonal wavefront DP over one reused scratch (the encode time
//!   is charged to the batched wall clock);
//! * **simd** — [`align::bsw_simd::BswSimdBatch`]: the same wavefront
//!   walk with explicit `i16` SIMD lanes (SSE2/AVX2) and an exact `i32`
//!   fallback, encode time likewise charged.
//!
//! Every tile's outcome is cross-checked between engines while timing, so
//! the bench doubles as a differential smoke test. Results go to stdout
//! and to a machine-readable `BENCH_filter.json` (integer-only JSON:
//! cells/sec, tiles/sec, wall µs per distance, plus `speedup_centi` =
//! 100 × batched/scalar and `simd_speedup_centi` = 100 × simd/batched
//! cells-per-second).
//!
//! Run with: `cargo run --release -p wga-bench --bin filter_throughput`
//! Optional flags: `--tiles N` (default 2000), `--tile-size N` (320),
//! `--band N` (32), `--out PATH` (BENCH_filter.json),
//! `--distances m1,m2,..` (milli-subst/site, default 100,250,450).

use align::banded::{banded_smith_waterman, tile_around};
use align::bsw_fast::{BswBatch, WavefrontScratch};
use align::bsw_simd::{BswSimdBatch, SimdScratch};
use genome::evolve::{EvolutionParams, SyntheticPair};
use genome::{GapPenalties, Sequence, SubstitutionMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

struct EngineRun {
    cells: u64,
    wall_us: u64,
    survived: u64,
}

impl EngineRun {
    fn cells_per_sec(&self) -> u64 {
        if self.wall_us == 0 {
            return 0;
        }
        (self.cells as u128 * 1_000_000 / self.wall_us as u128) as u64
    }

    fn tiles_per_sec(&self, tiles: u64) -> u64 {
        if self.wall_us == 0 {
            return 0;
        }
        (tiles as u128 * 1_000_000 / self.wall_us as u128) as u64
    }

    fn json(&self, tiles: u64) -> String {
        format!(
            "{{\"cells\": {}, \"wall_us\": {}, \"cells_per_sec\": {}, \"tiles_per_sec\": {}, \"survived\": {}}}",
            self.cells,
            self.wall_us,
            self.cells_per_sec(),
            self.tiles_per_sec(tiles),
            self.survived
        )
    }
}

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn parse_opt<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str, default: T) -> T {
    match take_opt(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let tiles: usize = parse_opt(&mut args, "--tiles", 2000);
    let tile_size: usize = parse_opt(&mut args, "--tile-size", 320);
    let band: usize = parse_opt(&mut args, "--band", 32);
    let out_path = take_opt(&mut args, "--out").unwrap_or_else(|| "BENCH_filter.json".into());
    let distances_raw = take_opt(&mut args, "--distances").unwrap_or_else(|| "100,250,450".into());
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments: {args:?}");
        std::process::exit(2);
    }
    let distances_milli: Vec<u64> = distances_raw
        .split(',')
        .map(|d| {
            d.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: invalid distance {d:?} (expected milli-subst/site)");
                std::process::exit(2);
            })
        })
        .collect();
    let threshold: i64 = 4000;
    let w = SubstitutionMatrix::darwin_wga();
    let gaps = GapPenalties::darwin_wga();

    println!(
        "filter_throughput: {tiles} tiles of {tile_size} bp, band {band}, threshold {threshold}"
    );
    println!(
        "{:<14} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12} | {:>8} {:>8}",
        "distance",
        "scalar c/s",
        "tiles/s",
        "batched c/s",
        "tiles/s",
        "simd c/s",
        "tiles/s",
        "batch-up",
        "simd-up"
    );

    let mut results = Vec::new();
    for &milli in &distances_milli {
        // One genome pair per distance, long enough for the tile ladder.
        let stride = (tile_size / 2).max(1);
        let len = tiles * stride + 2 * tile_size;
        let mut rng = StdRng::seed_from_u64(9000 + milli);
        let pair = SyntheticPair::generate(
            len,
            &EvolutionParams::at_distance(milli as f64 / 1000.0),
            &mut rng,
        );
        let target = &pair.target.sequence;
        let query = &pair.query.sequence;
        let max_pos = target.len().min(query.len());
        let hits: Vec<usize> = (0..tiles)
            .map(|k| (k * stride + tile_size / 2) % max_pos)
            .collect();

        let scalar = run_scalar(target, query, &hits, &w, &gaps, tile_size, band, threshold);
        let batched = run_batched(target, query, &hits, &w, &gaps, tile_size, band, threshold);
        let simd = run_simd(target, query, &hits, &w, &gaps, tile_size, band, threshold);
        assert_eq!(
            scalar.cells, batched.cells,
            "engines disagree on DP cell count"
        );
        assert_eq!(
            scalar.survived, batched.survived,
            "engines disagree on surviving tiles"
        );
        assert_eq!(
            scalar.cells, simd.cells,
            "simd engine disagrees on DP cell count"
        );
        assert_eq!(
            scalar.survived, simd.survived,
            "simd engine disagrees on surviving tiles"
        );

        let speedup_centi = if scalar.cells_per_sec() == 0 {
            0
        } else {
            batched.cells_per_sec() * 100 / scalar.cells_per_sec()
        };
        let simd_speedup_centi = if batched.cells_per_sec() == 0 {
            0
        } else {
            simd.cells_per_sec() * 100 / batched.cells_per_sec()
        };
        println!(
            "{:<14} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12} | {:>7}.{:02}x {:>7}.{:02}x",
            format!("{:.3}", milli as f64 / 1000.0),
            scalar.cells_per_sec(),
            scalar.tiles_per_sec(tiles as u64),
            batched.cells_per_sec(),
            batched.tiles_per_sec(tiles as u64),
            simd.cells_per_sec(),
            simd.tiles_per_sec(tiles as u64),
            speedup_centi / 100,
            speedup_centi % 100,
            simd_speedup_centi / 100,
            simd_speedup_centi % 100
        );
        let mut entry = String::new();
        let _ = write!(
            entry,
            "    {{\"distance_milli\": {milli}, \"tiles\": {tiles}, \"scalar\": {}, \"batched\": {}, \"simd\": {}, \"speedup_centi\": {speedup_centi}, \"simd_speedup_centi\": {simd_speedup_centi}}}",
            scalar.json(tiles as u64),
            batched.json(tiles as u64),
            simd.json(tiles as u64)
        );
        results.push(entry);
    }

    let json = format!(
        "{{\n  \"bench\": \"filter_throughput\",\n  \"tile_size\": {tile_size},\n  \"band\": {band},\n  \"threshold\": {threshold},\n  \"results\": [\n{}\n  ]\n}}\n",
        results.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}

#[allow(clippy::too_many_arguments)]
fn run_scalar(
    target: &Sequence,
    query: &Sequence,
    hits: &[usize],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    tile_size: usize,
    band: usize,
    threshold: i64,
) -> EngineRun {
    let warmup = hits.len().min(64);
    for &pos in &hits[..warmup] {
        let (tr, qr) = tile_around(pos, pos, tile_size, target.len(), query.len());
        std::hint::black_box(banded_smith_waterman(
            &target.as_slice()[tr],
            &query.as_slice()[qr],
            w,
            gaps,
            band,
        ));
    }
    let start = Instant::now();
    let mut cells = 0u64;
    let mut survived = 0u64;
    for &pos in hits {
        let (tr, qr) = tile_around(pos, pos, tile_size, target.len(), query.len());
        let out = banded_smith_waterman(&target.as_slice()[tr], &query.as_slice()[qr], w, gaps, band);
        cells += out.cells;
        survived += (out.max_score >= threshold) as u64;
    }
    EngineRun {
        cells,
        wall_us: start.elapsed().as_micros() as u64,
        survived,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_simd(
    target: &Sequence,
    query: &Sequence,
    hits: &[usize],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    tile_size: usize,
    band: usize,
    threshold: i64,
) -> EngineRun {
    let mut scratch = SimdScratch::new();
    {
        let warm = BswSimdBatch::new(target.as_slice(), query.as_slice(), w, gaps, band);
        if warm.lanes() == 0 {
            eprintln!("note: SIMD kernel unavailable on this host; simd column runs the i32 fallback");
        }
        for &pos in &hits[..hits.len().min(64)] {
            let (tr, qr) = tile_around(pos, pos, tile_size, target.len(), query.len());
            std::hint::black_box(warm.run_tile(tr, qr, &mut scratch));
        }
    }
    // As for batched: the once-per-pair encode is inside the timer.
    let start = Instant::now();
    let batch = BswSimdBatch::new(target.as_slice(), query.as_slice(), w, gaps, band);
    let mut cells = 0u64;
    let mut survived = 0u64;
    for &pos in hits {
        let (tr, qr) = tile_around(pos, pos, tile_size, target.len(), query.len());
        let out = batch.run_tile(tr, qr, &mut scratch);
        cells += out.cells;
        survived += (out.max_score >= threshold) as u64;
    }
    EngineRun {
        cells,
        wall_us: start.elapsed().as_micros() as u64,
        survived,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_batched(
    target: &Sequence,
    query: &Sequence,
    hits: &[usize],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    tile_size: usize,
    band: usize,
    threshold: i64,
) -> EngineRun {
    let mut scratch = WavefrontScratch::new();
    {
        let warm = BswBatch::new(target.as_slice(), query.as_slice(), w, gaps, band);
        for &pos in &hits[..hits.len().min(64)] {
            let (tr, qr) = tile_around(pos, pos, tile_size, target.len(), query.len());
            std::hint::black_box(warm.run_tile(tr, qr, &mut scratch));
        }
    }
    // The timed section includes batch construction (the once-per-pair
    // encode), so the reported throughput is end-to-end honest.
    let start = Instant::now();
    let batch = BswBatch::new(target.as_slice(), query.as_slice(), w, gaps, band);
    let mut cells = 0u64;
    let mut survived = 0u64;
    for &pos in hits {
        let (tr, qr) = tile_around(pos, pos, tile_size, target.len(), query.len());
        let out = batch.run_tile(tr, qr, &mut scratch);
        cells += out.cells;
        survived += (out.max_score >= threshold) as u64;
    }
    EngineRun {
        cells,
        wall_us: start.elapsed().as_micros() as u64,
        survived,
    }
}
