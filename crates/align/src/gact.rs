//! GACT — the prior tiled extension algorithm (Darwin, ASPLOS 2018) that
//! Fig. 10 benchmarks GACT-X against.
//!
//! GACT computes the *full* DP matrix of every tile, so its traceback
//! memory grows quadratically with tile size: 4 bits/cell ⇒ a tile of `T`
//! bases needs `T²/2` bytes. GACT-X stores only the X-drop band and can
//! afford a 1920-base tile in the same 1 MB that limits GACT to 1448.
//!
//! The driver is shared with GACT-X ([`crate::gactx`]); GACT is obtained
//! by disabling the drop test, exactly as described in §III-D.

use crate::gactx::{extend_alignment, ExtendedAlignment, TilingParams};
use genome::{GapPenalties, Sequence, SubstitutionMatrix};

/// Extends an anchor with GACT constrained to `traceback_bytes` of tile
/// traceback memory (Fig. 10's x-axis: 512 KB, 1 MB, 2 MB).
///
/// Returns `None` when no aligned base was produced.
pub fn extend_alignment_gact(
    target: &Sequence,
    query: &Sequence,
    anchor_t: usize,
    anchor_q: usize,
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    traceback_bytes: u64,
) -> Option<ExtendedAlignment> {
    let params = TilingParams::gact_with_memory(traceback_bytes);
    extend_alignment(target, query, anchor_t, anchor_q, w, gaps, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Base;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn random_seq(len: usize, rng: &mut StdRng) -> Sequence {
        (0..len)
            .map(|_| Base::from_code(rng.gen_range(0..4u8)))
            .collect()
    }

    #[test]
    fn gact_aligns_clean_sequences() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_seq(800, &mut rng);
        // 128 KB → tile 512; plenty for a clean 800 bp alignment.
        let a = extend_alignment_gact(&s, &s, 400, 400, &w, &g, 128 * 1024).unwrap();
        assert_eq!(a.alignment.matches(), 800);
    }

    #[test]
    fn gact_costs_more_cells_than_gactx_for_same_alignment() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(2);
        let s = random_seq(1200, &mut rng);
        let gact = extend_alignment_gact(&s, &s, 600, 600, &w, &g, 128 * 1024).unwrap();
        // Same 512-base tile, but a Y tight enough that the band (~70
        // columns) is far narrower than the tile. On identical sequences
        // the optimal path is the main diagonal, so quality is unchanged.
        let gactx_params = TilingParams {
            tile_size: 512,
            overlap: 128,
            y: 1500,
            edge_traceback: false,
        };
        let gactx =
            crate::gactx::extend_alignment(&s, &s, 600, 600, &w, &g, &gactx_params).unwrap();
        assert_eq!(gact.alignment.matches(), gactx.alignment.matches());
        assert!(
            gact.stats.cells > 2 * gactx.stats.cells,
            "GACT {} cells vs GACT-X {}",
            gact.stats.cells,
            gactx.stats.cells
        );
        assert!(
            gact.stats.peak_traceback_bytes > 2 * gactx.stats.peak_traceback_bytes,
            "GACT {} bytes vs GACT-X {}",
            gact.stats.peak_traceback_bytes,
            gactx.stats.peak_traceback_bytes
        );
    }

    #[test]
    fn gact_with_small_memory_cannot_cross_long_gaps() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(3);
        let left_arm = random_seq(400, &mut rng);
        let right_arm = random_seq(400, &mut rng);
        let gap = random_seq(250, &mut rng);
        // Target has a 250-base insertion between the arms.
        let mut target = left_arm.clone();
        target.extend(gap.iter());
        target.extend(right_arm.iter());
        let mut query = left_arm.clone();
        query.extend(right_arm.iter());

        // GACT with a tiny memory budget (tile 181 < gap) stalls inside the
        // gap; GACT-X with an equally small *memory* crosses it because its
        // banded tile is larger.
        let small = extend_alignment_gact(&target, &query, 100, 100, &w, &g, 16 * 1024).unwrap();
        let gactx_params = TilingParams {
            tile_size: 720, // what ~16 KB buys at a ~45-col band
            overlap: 128,
            y: 9430,
            edge_traceback: false,
        };
        let gactx =
            crate::gactx::extend_alignment(&target, &query, 100, 100, &w, &g, &gactx_params)
                .unwrap();
        assert!(
            gactx.alignment.matches() > small.alignment.matches(),
            "GACT-X {} vs GACT {}",
            gactx.alignment.matches(),
            small.alignment.matches()
        );
        assert!(gactx.alignment.matches() >= 700);
    }
}
