//! The three computing platforms compared in the paper (Tables V and VI).

use crate::bsw_array::BswBank;
use crate::dram::DramConfig;
use crate::gactx_array::GactXBank;
use serde::{Deserialize, Serialize};

/// The software baseline platform: an AWS c4.8xlarge instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Hardware threads available (the paper uses all 36).
    pub threads: usize,
    /// Instance price, $/hour (at time of writing of the paper).
    pub price_per_hour: f64,
    /// Measured package + DRAM power, watts (Table VI).
    pub power_w: f64,
}

impl CpuConfig {
    /// c4.8xlarge: 36 threads, $1.59/h, 215 W.
    pub fn c4_8xlarge() -> CpuConfig {
        CpuConfig {
            threads: 36,
            price_per_hour: 1.59,
            power_w: 215.0,
        }
    }
}

/// An accelerator platform: BSW bank + GACT-X bank + DRAM + cost/power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Banded Smith-Waterman filter arrays.
    pub bsw: BswBank,
    /// GACT-X extension arrays.
    pub gactx: GactXBank,
    /// Memory system.
    pub dram: DramConfig,
    /// Platform price, $/hour (None for the ASIC, which the paper prices
    /// by watts instead).
    pub price_per_hour: Option<f64>,
    /// Total platform power, watts (Table VI).
    pub power_w: f64,
}

impl AcceleratorConfig {
    /// The paper's FPGA platform: AWS f1.2xlarge (Xilinx VU9P), 50 BSW +
    /// 2 GACT-X arrays of 32 PEs at 150 MHz, $1.65/h, 65 W.
    pub fn fpga() -> AcceleratorConfig {
        AcceleratorConfig {
            bsw: BswBank::fpga(),
            gactx: GactXBank::fpga(),
            dram: DramConfig::fpga_ddr4(),
            price_per_hour: Some(1.65),
            power_w: 65.0,
        }
    }

    /// The paper's ASIC: TSMC 40 nm, 64 BSW + 12 GACT-X arrays of 64 PEs
    /// at 1 GHz, 35.92 mm², 43.34 W (Table IV).
    pub fn asic() -> AcceleratorConfig {
        AcceleratorConfig {
            bsw: BswBank::asic(),
            gactx: GactXBank::asic(),
            dram: DramConfig::asic_ddr4(),
            price_per_hour: None,
            power_w: 43.34,
        }
    }

    /// Filter throughput, memory-capped, tiles/second.
    pub fn filter_tiles_per_second(&self) -> f64 {
        self.dram.cap_throughput(
            self.bsw.tiles_per_second(),
            self.bsw.geometry.bytes_per_tile() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let cpu = CpuConfig::c4_8xlarge();
        assert_eq!(cpu.threads, 36);
        assert!((cpu.price_per_hour - 1.59).abs() < 1e-9);
        let fpga = AcceleratorConfig::fpga();
        assert_eq!(fpga.bsw.num_arrays, 50);
        assert_eq!(fpga.gactx.num_arrays, 2);
        assert_eq!(fpga.price_per_hour, Some(1.65));
        let asic = AcceleratorConfig::asic();
        assert_eq!(asic.bsw.num_arrays, 64);
        assert_eq!(asic.gactx.num_arrays, 12);
        assert!((asic.power_w - 43.34).abs() < 1e-9);
    }

    #[test]
    fn asic_filter_is_memory_capped() {
        // 70M tiles/s × 640 B/tile ≈ 45 GB/s < 76.8 GB/s: just under the
        // cap with the default geometry — the paper's "provisioned so DRAM
        // is the bottleneck" statement holds within a factor ~1.7.
        let asic = AcceleratorConfig::asic();
        let capped = asic.filter_tiles_per_second();
        let uncapped = asic.bsw.tiles_per_second();
        assert!(capped <= uncapped);
        assert!(capped > 0.5 * uncapped);
    }

    #[test]
    fn fpga_filter_not_memory_bound() {
        let fpga = AcceleratorConfig::fpga();
        let capped = fpga.filter_tiles_per_second();
        let uncapped = fpga.bsw.tiles_per_second();
        assert!((capped - uncapped).abs() / uncapped < 1e-9);
    }
}
