#!/usr/bin/env bash
# Panic audit — thin wrapper around `wga-lint --rule panics`.
#
# The awk/grep implementation this replaces truncated each file at its
# first `#[cfg(test)]` line (missing mid-file test modules) and counted
# doc-comment examples as code. wga-lint lexes properly: comments,
# strings, raw strings and char literals are excluded, `#[cfg(test)]`
# items are brace-matched anywhere in a file, and `unreachable!` /
# `todo!` / `unimplemented!` count alongside `.unwrap()` / `.expect(` /
# `panic!`.
#
# The baseline lives in ONE place now: the `[baseline panics]` section
# of scripts/wga-lint.manifest (per-directory counts; the
# `[panics-forbidden]` section keeps crates/core/src/obs at zero and
# `[panics-exempt]` skips the bench harness). Deliberate additions must
# update the manifest with a justification in the commit; waive single
# sites with
#   // lint: allow(panics): <why>
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p wga-lint -- --rule panics --no-json
