//! Property-based tests: the alignment kernels against their invariants
//! and against each other.

use align::alignment::Alignment;
use align::banded::banded_smith_waterman;
use align::gactx::{extend_alignment, TilingParams};
use align::nw::needleman_wunsch;
use align::sw::smith_waterman;
use align::xdrop::xdrop_tile;
use genome::{Base, GapPenalties, Sequence, SubstitutionMatrix};
use proptest::prelude::*;

fn dna_strategy(min: usize, max: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(0u8..4, min..max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

/// A pair of related sequences: a base sequence and a mutated copy.
fn related_pair() -> impl Strategy<Value = (Sequence, Sequence)> {
    (dna_strategy(20, 200), any::<u64>()).prop_map(|(s, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Sequence::new();
        for b in s.iter() {
            match rng.gen_range(0..20) {
                0 => {} // deletion
                1 => {
                    q.push(Base::from_code(rng.gen_range(0..4)));
                    q.push(b);
                } // insertion
                2 => q.push(Base::from_code(rng.gen_range(0..4))), // substitution
                _ => q.push(b),
            }
        }
        (s, q)
    })
}

fn scoring() -> (SubstitutionMatrix, GapPenalties) {
    (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sw_alignment_validates_and_scores_exactly((t, q) in related_pair()) {
        let (w, g) = scoring();
        let r = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        if let Some(a) = r.alignment {
            prop_assert!(a.validate(&t, &q).is_ok(), "{:?}", a.validate(&t, &q));
            prop_assert_eq!(a.score, a.rescore(&t, &q, &w, &g));
            prop_assert!(a.score > 0);
        }
    }

    #[test]
    fn nw_covers_both_sequences_and_scores_exactly((t, q) in related_pair()) {
        let (w, g) = scoring();
        let r = needleman_wunsch(t.as_slice(), q.as_slice(), &w, &g);
        prop_assert_eq!(r.cigar.target_len(), t.len());
        prop_assert_eq!(r.cigar.query_len(), q.len());
        let a = Alignment::new(0, 0, r.cigar.clone(), r.score);
        prop_assert!(a.validate(&t, &q).is_ok());
        prop_assert_eq!(r.score, a.rescore(&t, &q, &w, &g));
    }

    #[test]
    fn banded_score_never_exceeds_full_sw((t, q) in related_pair(), band in 1usize..64) {
        let (w, g) = scoring();
        let banded = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        let full = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        prop_assert!(banded.max_score <= full.best_score,
            "banded {} > full {}", banded.max_score, full.best_score);
    }

    #[test]
    fn banded_score_is_monotone_in_band((t, q) in related_pair()) {
        let (w, g) = scoring();
        let mut prev = i64::MIN;
        for band in [1usize, 4, 16, 64, 256] {
            let out = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
            prop_assert!(out.max_score >= prev);
            prev = out.max_score;
        }
    }

    #[test]
    fn wide_band_equals_full_sw((t, q) in related_pair()) {
        let (w, g) = scoring();
        let band = t.len().max(q.len()) + 1;
        let banded = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        let full = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        prop_assert_eq!(banded.max_score, full.best_score);
    }

    #[test]
    fn xdrop_path_validates_and_scores_to_vmax((t, q) in related_pair(), y in 500i64..20_000) {
        let (w, g) = scoring();
        let r = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, y);
        let a = Alignment::new(0, 0, r.cigar.clone(), r.max_score);
        prop_assert!(a.validate(&t, &q).is_ok(), "{:?}", a.validate(&t, &q));
        prop_assert_eq!(r.max_score, a.rescore(&t, &q, &w, &g));
        prop_assert_eq!(a.target_span(), r.max_target);
        prop_assert_eq!(a.query_span(), r.max_query);
    }

    #[test]
    fn xdrop_score_monotone_in_y((t, q) in related_pair()) {
        let (w, g) = scoring();
        let mut prev = i64::MIN;
        for y in [200i64, 1_000, 5_000, 25_000, i64::MAX / 8] {
            let r = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, y);
            prop_assert!(r.max_score >= prev, "y {}: {} < {}", y, r.max_score, prev);
            prev = r.max_score;
        }
    }

    #[test]
    fn xdrop_with_huge_y_dominates_global_nw((t, q) in related_pair()) {
        // The unclipped kernel's Vmax is a max over all cells, so it is at
        // least the (m,n)-cell global score.
        let (w, g) = scoring();
        let r = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, i64::MAX / 8);
        let full = needleman_wunsch(t.as_slice(), q.as_slice(), &w, &g);
        prop_assert!(r.max_score >= full.score);
    }

    #[test]
    fn gactx_extension_validates((t, q) in related_pair()) {
        let (w, g) = scoring();
        let params = TilingParams { tile_size: 48, overlap: 12, y: 9430, edge_traceback: false };
        if let Some(ext) = extend_alignment(&t, &q, 0, 0, &w, &g, &params) {
            prop_assert!(ext.alignment.validate(&t, &q).is_ok());
            prop_assert_eq!(
                ext.alignment.score,
                ext.alignment.rescore(&t, &q, &w, &g)
            );
        }
    }

    #[test]
    fn gactx_anchor_inside_sequences_never_panics(
        (t, q) in related_pair(),
        at in 0usize..200,
        aq in 0usize..200,
    ) {
        let (w, g) = scoring();
        let params = TilingParams { tile_size: 64, overlap: 16, y: 9430, edge_traceback: false };
        let at = at.min(t.len());
        let aq = aq.min(q.len());
        let _ = extend_alignment(&t, &q, at, aq, &w, &g, &params);
    }
}
